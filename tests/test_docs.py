"""Documentation honesty: the docs must match the code and each other.

Two failure modes this file guards against:

- **drift** — the README's CLI excerpt advertising subcommands or flags
  the parser no longer has (or missing ones it grew);
- **dead links** — relative markdown links in README/DESIGN/docs/
  pointing at files that moved or were renamed.
"""

import os
import re

from repro.cli import build_parser

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

DOC_FILES = ["README.md", "DESIGN.md"]
DOCS_DIR = os.path.join(REPO_ROOT, "docs")


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _doc_paths():
    paths = [os.path.join(REPO_ROOT, name) for name in DOC_FILES]
    for name in sorted(os.listdir(DOCS_DIR)):
        if name.endswith(".md"):
            paths.append(os.path.join(DOCS_DIR, name))
    return paths


def _subcommands():
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        if hasattr(action, "choices") and action.choices:
            return dict(action.choices)
    raise AssertionError("CLI parser has no subcommands")


def test_readme_cli_excerpt_lists_every_subcommand():
    """The README's usage excerpt must show the real subcommand set."""
    readme = _read(os.path.join(REPO_ROOT, "README.md"))
    names = _subcommands()
    excerpt = "{" + ",".join(names) + "}"
    assert excerpt in readme, (
        f"README CLI excerpt is stale: expected the literal {excerpt!r} "
        "(regenerate it from `python -m repro --help`)"
    )
    for name in names:
        assert re.search(rf"\brepro {name}\b|^    {name} ", readme, re.M), (
            f"README never shows subcommand {name!r}"
        )


def test_readme_mentions_parallel_and_stream_flags():
    """The flags the quickstart historically omitted stay documented."""
    readme = _read(os.path.join(REPO_ROOT, "README.md"))
    for flag in ("--parallel", "--stream", "repro watch", "repro collect"):
        assert flag in readme, f"README quickstart omits {flag!r}"


def test_readme_documents_facade_interface():
    """The façade-era CLI surface must appear in the README: the new
    check flags, the engines listing, and the api docs page."""
    readme = _read(os.path.join(REPO_ROOT, "README.md"))
    for token in ("--isolation", "--mode", "--engine", "repro engines",
                  "docs/api.md", "repro.check", "Report"):
        assert token in readme, f"README omits façade surface {token!r}"


def test_check_help_flags_documented():
    """Drift guard over `repro check --help`: every flag the check
    subcommand advertises must be named somewhere in README or
    docs/api.md (regenerate the excerpts when flags change)."""
    parser = _subcommands()["check"]
    corpus = (
        _read(os.path.join(REPO_ROOT, "README.md"))
        + _read(os.path.join(DOCS_DIR, "api.md"))
    )
    for action in parser._actions:
        for option in action.option_strings:
            if option.startswith("--"):
                assert option in corpus, (
                    f"`repro check {option}` is undocumented in "
                    "README.md/docs/api.md"
                )


def test_api_docs_cover_every_registered_engine():
    """docs/api.md must name every registered engine and every isolation
    level (the migration table is regenerated when the registry grows)."""
    from repro.api import ISOLATION_LEVELS, engine_names

    api_md = _read(os.path.join(DOCS_DIR, "api.md"))
    for name in engine_names():
        assert name in api_md, f"docs/api.md omits engine {name!r}"
    for isolation in ISOLATION_LEVELS:
        assert f'"{isolation}"' in api_md or f"`{isolation}`" in api_md, (
            f"docs/api.md omits isolation level {isolation!r}"
        )


def test_collect_docs_linked_from_readme():
    readme = _read(os.path.join(REPO_ROOT, "README.md"))
    assert "docs/architecture.md" in readme
    assert "docs/collecting.md" in readme


_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_no_dead_relative_links():
    """Every relative markdown link in README/DESIGN/docs resolves."""
    dead = []
    for path in _doc_paths():
        base = os.path.dirname(path)
        for target in _LINK.findall(_read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0])
            )
            if not os.path.exists(resolved):
                dead.append(f"{os.path.relpath(path, REPO_ROOT)} -> {target}")
    assert dead == [], f"dead relative links: {dead}"


def test_design_has_collection_section():
    design = _read(os.path.join(REPO_ROOT, "DESIGN.md"))
    assert "## S8 — Live-database collection" in design
    assert "check_aborted_reads" in design  # the soundness argument
