"""Tests for the MVCC database substrate (repro.storage)."""

import pytest

from repro.core.history import INITIAL_VALUE
from repro.storage.database import MVCCDatabase
from repro.storage.faults import DATABASE_PROFILES, FaultConfig
from repro.storage.mvcc import VersionStore


class TestVersionStore:
    def test_read_before_any_write(self):
        store = VersionStore()
        assert store.read_at("x", 100) is INITIAL_VALUE

    def test_snapshot_reads(self):
        store = VersionStore()
        store.install("x", "a", 1, txid=0)
        store.install("x", "b", 5, txid=1)
        assert store.read_at("x", 0) is INITIAL_VALUE
        assert store.read_at("x", 1) == "a"
        assert store.read_at("x", 4) == "a"
        assert store.read_at("x", 5) == "b"
        assert store.read_at("x", 99) == "b"

    def test_newer_than(self):
        store = VersionStore()
        store.install("x", "a", 3, txid=0)
        assert store.newer_than("x", 2)
        assert not store.newer_than("x", 3)
        assert not store.newer_than("y", 0)

    def test_monotonic_timestamps_enforced(self):
        store = VersionStore()
        store.install("x", "a", 5, txid=0)
        with pytest.raises(ValueError):
            store.install("x", "b", 5, txid=1)

    def test_intermediate_writes_recorded(self):
        store = VersionStore()
        store.record_intermediate("x", "tmp", txid=3)
        assert store.intermediate_writes["x"] == [("tmp", 3)]

    def test_chain(self):
        store = VersionStore()
        store.install("x", "a", 1, txid=0)
        store.install("x", "b", 2, txid=1)
        assert [v.value for v in store.chain("x")] == ["a", "b"]


class TestSnapshotIsolationSemantics:
    def test_read_your_writes(self):
        db = MVCCDatabase()
        t = db.begin(0)
        db.write(t, "x", 1)
        assert db.read(t, "x") == 1

    def test_repeatable_reads(self):
        db = MVCCDatabase()
        t1 = db.begin(0)
        assert db.read(t1, "x") is INITIAL_VALUE
        t2 = db.begin(1)
        db.write(t2, "x", 5)
        assert db.commit(t2)
        # t1 still sees its snapshot.
        assert db.read(t1, "x") is INITIAL_VALUE

    def test_first_committer_wins(self):
        db = MVCCDatabase()
        t1 = db.begin(0)
        t2 = db.begin(1)
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        assert db.commit(t1)
        assert not db.commit(t2)  # write-write conflict -> abort
        assert db.committed_value("x") == 1

    def test_non_conflicting_concurrent_commits(self):
        db = MVCCDatabase()
        t1 = db.begin(0)
        t2 = db.begin(1)
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        assert db.commit(t1)
        assert db.commit(t2)  # write skew is allowed under SI

    def test_session_sees_own_previous_commit(self):
        db = MVCCDatabase()
        t1 = db.begin(0)
        db.write(t1, "x", 1)
        assert db.commit(t1)
        t2 = db.begin(0)
        assert db.read(t2, "x") == 1

    def test_read_only_txn_always_commits(self):
        db = MVCCDatabase()
        t1 = db.begin(0)
        db.read(t1, "x")
        t2 = db.begin(1)
        db.write(t2, "x", 1)
        assert db.commit(t2)
        assert db.commit(t1)

    def test_use_after_commit_rejected(self):
        db = MVCCDatabase()
        t = db.begin(0)
        db.commit(t)
        with pytest.raises(RuntimeError):
            db.read(t, "x")

    def test_explicit_abort(self):
        db = MVCCDatabase()
        t = db.begin(0)
        db.write(t, "x", 1)
        db.abort(t)
        assert db.committed_value("x") is INITIAL_VALUE


class TestSerializableSemantics:
    def test_read_validation_aborts_stale_reader(self):
        db = MVCCDatabase(isolation="serializable")
        t1 = db.begin(0)
        assert db.read(t1, "x") is INITIAL_VALUE
        db.write(t1, "y", 1)
        t2 = db.begin(1)
        db.write(t2, "x", 5)
        assert db.commit(t2)
        # t1 read x before t2's commit: its read set is stale.
        assert not db.commit(t1)

    def test_write_skew_prevented(self):
        db = MVCCDatabase(isolation="serializable")
        t1 = db.begin(0)
        t2 = db.begin(1)
        db.read(t1, "x")
        db.read(t1, "y")
        db.read(t2, "x")
        db.read(t2, "y")
        db.write(t1, "x", 1)
        db.write(t2, "y", 2)
        assert db.commit(t1)
        assert not db.commit(t2)


class TestReadCommitted:
    def test_sees_latest_at_each_read(self):
        db = MVCCDatabase(isolation="read_committed")
        t1 = db.begin(0)
        assert db.read(t1, "x") is INITIAL_VALUE
        t2 = db.begin(1)
        db.write(t2, "x", 7)
        assert db.commit(t2)
        assert db.read(t1, "x") == 7  # non-repeatable read


class TestFaults:
    def test_no_fcw_allows_lost_update(self):
        db = MVCCDatabase(faults=FaultConfig(no_first_committer_wins=True))
        t1 = db.begin(0)
        t2 = db.begin(1)
        db.write(t1, "x", 1)
        db.write(t2, "x", 2)
        assert db.commit(t1)
        assert db.commit(t2)  # the bug: no conflict detection

    def test_replicas_divergence_window(self):
        faults = FaultConfig(replicas=2, replication_delay=10)
        db = MVCCDatabase(faults=faults)
        t = db.begin(0)  # session 0 -> replica 0
        db.write(t, "x", 1)
        assert db.commit(t)
        # Replica 1 has not applied the write yet.
        t2 = db.begin(1)  # session 1 -> replica 1
        assert db.read(t2, "x") is INITIAL_VALUE

    def test_replication_eventually_applies(self):
        faults = FaultConfig(replicas=2, replication_delay=1)
        db = MVCCDatabase(faults=faults)
        t = db.begin(0)
        db.write(t, "x", 1)
        assert db.commit(t)
        # One more commit pushes the pending application past its due
        # sequence number.
        t3 = db.begin(0)
        db.write(t3, "z", 9)
        assert db.commit(t3)
        t2 = db.begin(1)
        assert db.read(t2, "x") == 1

    def test_abort_probability(self):
        db = MVCCDatabase(faults=FaultConfig(abort_prob=1.0))
        t = db.begin(0)
        db.write(t, "x", 1)
        assert not db.commit(t)

    def test_stale_snapshot_reads_old_data(self):
        faults = FaultConfig(stale_snapshot_prob=1.0, stale_snapshot_depth=10)
        db = MVCCDatabase(faults=faults, seed=1)
        t = db.begin(0)
        db.write(t, "x", 1)
        assert db.commit(t)
        t2 = db.begin(0)
        # Snapshot forced before the commit: own write invisible.
        assert db.read(t2, "x") is INITIAL_VALUE

    def test_profiles_have_expected_fields(self):
        for name, profile in DATABASE_PROFILES.items():
            assert profile["faults"].faulty, name
            assert "expected_anomaly" in profile

    def test_unknown_isolation_rejected(self):
        with pytest.raises(ValueError):
            MVCCDatabase(isolation="chaos")
