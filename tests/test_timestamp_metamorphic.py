"""Metamorphic properties of the ``timestamp`` engine.

The fast-path conditions compare timestamps only through ``<`` / ``<=``
/ ``==``, so they are invariant under any strictly monotone transform
of the time axis: shifting every stamp by a constant or scaling by a
positive factor must preserve both the verdict *and* the residue —
transaction for transaction.  Collapsing every stamp to one value
destroys all ordering information; on any history whose ambiguity
clusters each contain a writer this degenerates to a 100% fallback,
which must still return the PolySI verdict.

Shift/scale constants are chosen exactly representable against the
integer-plus-halves grid of serial and logical-clock stamps, so the
invariance is exact rather than approximate.
"""

import pytest

from repro.collect import Collector, SQLiteAdapter
from repro.core.checker import PolySIChecker
from repro.timestamp import (
    TimestampChecker,
    collapse_timestamps,
    scale_timestamps,
    shift_timestamps,
    stamp_serial,
)
from repro.workloads.corpus import make_anomaly
from repro.workloads.generator import WorkloadParams, generate_workload

from _helpers import lost_update_history, serializable_history


@pytest.fixture(scope="module")
def collected():
    """One live SQLite collection with logical-clock timestamps."""
    adapter = SQLiteAdapter()
    spec = generate_workload(
        WorkloadParams(sessions=3, txns_per_session=12, ops_per_txn=4,
                       keys=10),
        seed=11,
    )
    try:
        return Collector(adapter).run(spec).history
    finally:
        adapter.close()


def subjects(collected):
    """Timestamped histories spanning fast path, fallback, violation."""
    return {
        "collected": collected,
        "serial-valid": stamp_serial(serializable_history()),
        "serial-lost-update": stamp_serial(lost_update_history()),
        "serial-anomaly": stamp_serial(
            make_anomaly("long-fork", seed=2, padding_txns=4)
        ),
    }


def signature(history):
    """(verdict, residue size, residue reasons) for one checked history."""
    result = TimestampChecker().check(history)
    return (result.satisfies_si, result.stats["residue_txns"],
            result.stats["residue_reasons"])


class TestShiftInvariance:
    @pytest.mark.parametrize("delta", [1000.0, -4096.0])
    def test_shift_preserves_verdict_and_residue(self, collected, delta):
        for name, history in subjects(collected).items():
            assert signature(shift_timestamps(history, delta)) == \
                signature(history), (name, delta)


class TestScaleInvariance:
    @pytest.mark.parametrize("factor", [2.0, 0.5, 64.0])
    def test_scale_preserves_verdict_and_residue(self, collected, factor):
        for name, history in subjects(collected).items():
            assert signature(scale_timestamps(history, factor)) == \
                signature(history), (name, factor)

    def test_nonpositive_factor_rejected(self, collected):
        with pytest.raises(ValueError):
            scale_timestamps(collected, 0.0)
        with pytest.raises(ValueError):
            scale_timestamps(collected, -1.0)


class TestCollapseDegeneracy:
    def test_collapse_is_total_fallback_with_verdict_parity(self, collected):
        for name, history in subjects(collected).items():
            collapsed = collapse_timestamps(history)
            result = TimestampChecker().check(collapsed)
            reference = PolySIChecker().check(history)
            assert result.satisfies_si == reference.satisfies_si, name
            assert result.stats["residue_fraction"] == 1.0, name
            assert result.decided_by != "timestamps", name

    def test_collapse_seeds_every_writer_as_degenerate(self, collected):
        result = TimestampChecker().check(collapse_timestamps(collected))
        writers = sum(1 for t in collected.transactions
                      if t.committed and t.writes)
        assert result.stats["residue_reasons"]["degenerate"] == writers


class TestCompositionality:
    def test_shift_then_scale_composes(self, collected):
        transformed = scale_timestamps(
            shift_timestamps(collected, 512.0), 4.0)
        assert signature(transformed) == signature(collected)
