"""Service-layer persistence: per-tenant journals, checkpoints, and
daemon recovery (``repro serve --state-dir``).

The contract under test: an event is acknowledged only after it is in
the tenant's journal, so a daemon killed with SIGKILL loses no accepted
event — a restart on the same state directory recovers every tenant's
verdict (restoring the newest checkpoint and replaying the log tail)
without any client resending anything it was acked for.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.core.history import R, W
from repro.service import ReproService, ServiceClient, ServiceConfig
from repro.store import StoreLocked


def clean_events(n, *, start=0, sessions=3):
    """``n`` committed write-only events on unique keys — trivially SI."""
    return [(i % sessions, (W(f"k{i}", i + 1),), "committed")
            for i in range(start, start + n)]


def violating_events():
    """Session 0 overwrites ``x`` then claims to read the initial
    value: an immediate own-session visibility violation."""
    return [(0, (W("x", 1),), "committed"),
            (0, (R("x", None),), "committed")]


@pytest.fixture
def service(tmp_path):
    """Factory fixture like test_service's, defaulting to a state dir."""
    handles = []
    state_dir = str(tmp_path / "state")

    def start(**kwargs):
        kwargs.setdefault("http_port", 0)
        kwargs.setdefault("tcp_port", None)
        kwargs.setdefault("state_dir", state_dir)
        svc = ReproService(ServiceConfig(**kwargs))
        handle = svc.start_in_thread()
        handles.append(handle)
        client = ServiceClient("127.0.0.1", handle.http_port)
        return svc, handle, client

    start.state_dir = state_dir
    yield start
    for handle in handles:
        if handle.thread.is_alive():
            handle.stop()


class TestTenantPersistence:
    def test_verdict_carries_the_persistence_block(self, service):
        _, handle, client = service(checkpoint_every=5)
        client.push_events("alpha", clean_events(12), sessions=3)
        verdicts = handle.drain()
        alpha = verdicts["alpha"]
        assert alpha["report"]["verdict"] == "satisfied"
        persistence = alpha["persistence"]
        assert persistence["journaled_events"] == 12
        assert persistence["resumed_from"] == 0
        # Periodic checkpoints at 5 and 10, plus the final one at drain.
        assert persistence["checkpoints_written"] == 3
        assert os.path.isdir(os.path.join(service.state_dir, "tenants",
                                          "alpha"))

    def test_clean_restart_recovers_every_tenant(self, service):
        _, first, client = service(checkpoint_every=5)
        client.push_events("alpha", clean_events(12), sessions=3)
        client.push_events("beta", violating_events())
        verdicts = first.drain()
        assert verdicts["alpha"]["report"]["verdict"] == "satisfied"
        assert verdicts["beta"]["report"]["verdict"] != "satisfied"
        first.stop()

        _, second, client = service(checkpoint_every=5)
        verdicts = client.verdicts()
        assert set(verdicts) == {"alpha", "beta"}
        alpha, beta = verdicts["alpha"], verdicts["beta"]
        assert alpha["report"]["verdict"] == "satisfied"
        assert alpha["events"] == 12
        # The clean drain checkpointed at 12: recovery restores it and
        # replays nothing.
        assert alpha["persistence"]["resumed_from"] == 12
        assert alpha["persistence"]["recovered_events"] == 12
        assert beta["report"]["verdict"] != "satisfied"

        # Recovered tenants keep accepting events.
        client.push_events("alpha", clean_events(6, start=12), sessions=3)
        verdicts = second.drain()
        assert verdicts["alpha"]["events"] == 18
        assert verdicts["alpha"]["report"]["verdict"] == "satisfied"
        assert verdicts["alpha"]["persistence"]["journaled_events"] == 18

    def test_recovered_violation_latches_and_still_rejects_resume_lies(
            self, service):
        _, first, client = service()
        client.push_events("beta", violating_events())
        first.drain()
        first.stop()
        _, _, client = service()
        beta = client.verdict("beta")
        assert beta["report"]["verdict"] != "satisfied"
        assert beta["persistence"]["resumed_from"] == 0  # never checkpointed
        assert beta["persistence"]["recovered_events"] == 2

    def test_live_state_dir_is_locked_against_a_second_daemon(self, service):
        _, _, client = service()
        client.push_events("alpha", clean_events(3), sessions=3)
        with pytest.raises(StoreLocked):
            ReproService(ServiceConfig(
                http_port=0, tcp_port=None,
                state_dir=service.state_dir)).start_in_thread()

    def test_offline_facade_agrees_with_the_recovered_daemon(self, service):
        _, first, client = service()
        client.push_events("alpha", clean_events(10), sessions=3)
        client.push_events("beta", violating_events())
        first.drain()
        first.stop()
        alpha = repro.check(None, mode="online", state_dir=os.path.join(
            service.state_dir, "tenants", "alpha"))
        beta = repro.check(None, mode="online", state_dir=os.path.join(
            service.state_dir, "tenants", "beta"))
        assert alpha.ok
        assert not beta.ok


class TestCrashRecovery:
    """SIGKILL the real subprocess daemon mid-stream; restart; nothing
    acknowledged is lost."""

    @staticmethod
    def _spawn(state_dir):
        repo_src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--tcp-port", "-1", "--state-dir", state_dir,
             "--checkpoint-every", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        line = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if not match:
            proc.kill()
            pytest.fail(f"no port banner: {line!r} {proc.stdout.read()!r}")
        return proc, int(match.group(1))

    @staticmethod
    def _wait_for_quiesce(client, tenant, events, deadline=10.0):
        """Poll /stats until the tenant's worker has checked ``events``."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            stats = {t["tenant"]: t for t in client.stats()["tenants"]}
            if stats.get(tenant, {}).get("events") == events:
                return stats[tenant]
            time.sleep(0.05)
        pytest.fail(f"{tenant} never reached {events} events")

    def test_sigkill_then_restart_loses_no_acked_event(self, tmp_path):
        state_dir = str(tmp_path / "state")
        proc, port = self._spawn(state_dir)
        try:
            client = ServiceClient("127.0.0.1", port)
            client.push_events("alpha", clean_events(25), sessions=3)
            client.push_events("beta", violating_events())
            alpha = self._wait_for_quiesce(client, "alpha", 25)
            self._wait_for_quiesce(client, "beta", 2)
            assert alpha["checkpoints_written"] == 2  # at 10 and 20
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

        proc, port = self._spawn(state_dir)
        try:
            client = ServiceClient("127.0.0.1", port)
            verdicts = client.verdicts()
            assert set(verdicts) == {"alpha", "beta"}
            alpha, beta = verdicts["alpha"], verdicts["beta"]
            assert alpha["report"]["verdict"] == "satisfied"
            assert alpha["events"] == 25
            assert alpha["persistence"]["resumed_from"] == 20
            assert alpha["persistence"]["recovered_events"] == 25
            assert beta["report"]["verdict"] != "satisfied"

            # Keep streaming into the recovered tenant, then drain.
            client.push_events("alpha", clean_events(5, start=25),
                               sessions=3)
            final = client.shutdown()
            assert final["alpha"]["events"] == 30
            assert final["alpha"]["report"]["verdict"] == "satisfied"
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # Offline cross-check straight off the journals.
        report = repro.check(None, mode="online", state_dir=os.path.join(
            state_dir, "tenants", "alpha"))
        assert report.ok
        assert report.stats["persistence"]["journaled_events"] == 30
