"""Unit tests for the observability layer (``repro.obs``): the span
tracer, the metrics registry, the ``repro-trace/1`` validator, the
Chrome trace_event round-trip, and the logging policy.

The cross-mode guarantees (every registered engine x mode combination
emits a well-formed payload) live in ``test_obs_trace_soundness.py``;
this module pins the primitives those guarantees are built from.
"""

import json
import logging
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    configure_logging,
    counter,
    current_metrics,
    current_tracer,
    gauge,
    get_logger,
    histogram,
    load_chrome_trace,
    span_tree,
    stage_seconds,
    trace_span,
    use_metrics,
    use_tracer,
    validate_trace,
    verbosity_level,
    write_chrome_trace,
)
from repro.obs.trace import NULL_SPAN, TRACE_SCHEMA


class TestDisabledPath:
    """With nothing installed, instrumentation must be inert."""

    def test_trace_span_returns_the_shared_null_span(self):
        assert current_tracer() is None
        span = trace_span("prune", backend="numpy")
        assert span is NULL_SPAN
        with span as s:
            s.set(iterations=3)  # attribute calls are absorbed

    def test_metric_handles_are_shared_noops(self):
        assert current_metrics() is None
        counter("closure.python.inserts_new").inc(5)
        gauge("solver.conflicts").set(9)
        histogram("stage.prune").observe(0.25)  # nothing raises


class TestTracer:
    def test_nested_spans_record_parent_links_and_attrs(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", corpus="cascade"):
                with trace_span("inner") as inner:
                    inner.set(pruned=17)
        payload = validate_trace(tracer.payload(mode="batch",
                                                engine="polysi"))
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["mode"] == "batch" and payload["engine"] == "polysi"
        by_name = {s["name"]: s for s in payload["spans"]}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["attrs"] == {"corpus": "cascade"}
        assert by_name["inner"]["attrs"] == {"pruned": 17}
        assert by_name["inner"]["wall"] >= 0.0

    def test_spans_commit_on_exit_only(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("open"):
                assert tracer.export_spans() == []
        assert [s["name"] for s in tracer.export_spans()] == ["open"]

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("root"):
                with trace_span("a"):
                    pass
                with trace_span("b"):
                    pass
        tree = span_tree(tracer.payload())
        root = tree[None][0]
        assert sorted(c["name"] for c in tree[root["id"]]) == ["a", "b"]

    def test_max_spans_cap_counts_dropped_instead_of_losing_silently(self):
        tracer = Tracer(max_spans=2)
        with use_tracer(tracer):
            for i in range(5):
                with trace_span(f"s{i}"):
                    pass
        payload = validate_trace(tracer.payload())
        assert len(payload["spans"]) == 2
        assert payload["dropped"] == 3

    def test_stage_seconds_totals_by_name(self):
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(3):
                with trace_span("classify"):
                    time.sleep(0.001)
        totals = stage_seconds(tracer.payload())
        assert set(totals) == {"classify"}
        assert totals["classify"] >= 0.003


class TestAdopt:
    """Worker spans ship as plain dicts and re-parent under a pool span."""

    def _worker_spans(self):
        worker = Tracer()
        with use_tracer(worker):
            with trace_span("shard", index=0):
                with trace_span("prune"):
                    pass
        return worker.export_spans()

    def test_adopt_reparents_stamps_worker_and_stays_valid(self):
        exported = self._worker_spans()
        parent = Tracer()
        with use_tracer(parent):
            with trace_span("pool") as pool:
                pass
            adopted = parent.adopt(exported, parent=pool, worker=4242)
        assert adopted == 2
        payload = validate_trace(parent.payload())
        by_name = {s["name"]: s for s in payload["spans"]}
        assert by_name["shard"]["parent"] == by_name["pool"]["id"]
        assert by_name["prune"]["parent"] == by_name["shard"]["id"]
        assert by_name["shard"]["worker"] == 4242
        assert by_name["prune"]["worker"] == 4242
        assert by_name["pool"]["worker"] is None
        # clocks rebase onto the pool span's start
        assert by_name["shard"]["start"] >= by_name["pool"]["start"]

    def test_adopt_preserves_the_parent_before_child_invariant(self):
        exported = self._worker_spans()
        parent = Tracer()
        parent.adopt(exported, parent=None, worker="w0")
        payload = validate_trace(parent.payload())  # would raise on orphans
        ids = [s["id"] for s in payload["spans"]]
        assert ids == sorted(ids)


class TestValidateTrace:
    def _payload(self, spans):
        return {"schema": TRACE_SCHEMA, "mode": None, "engine": None,
                "spans": spans, "metrics": {}, "dropped": 0}

    def _span(self, **overrides):
        span = {"id": 1, "parent": None, "name": "check", "start": 0.0,
                "wall": 0.01, "cpu": 0.01, "rss_kb": 0, "attrs": {},
                "worker": None}
        span.update(overrides)
        return span

    def test_accepts_a_minimal_payload(self):
        validate_trace(self._payload([self._span()]))

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_trace({"schema": "repro-trace/0", "spans": []})

    def test_rejects_orphan_spans(self):
        spans = [self._span(), self._span(id=2, parent=99)]
        with pytest.raises(ValueError, match="orphan"):
            validate_trace(self._payload(spans))

    def test_rejects_children_listed_before_their_parents(self):
        spans = [self._span(id=2, parent=5),
                 self._span(id=5, parent=None)]
        with pytest.raises(ValueError, match="orphan"):
            validate_trace(self._payload(spans))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_trace(self._payload([self._span(), self._span()]))

    def test_rejects_negative_wall(self):
        with pytest.raises(ValueError, match="wall"):
            validate_trace(self._payload([self._span(wall=-1.0)]))

    def test_rejects_non_scalar_attrs(self):
        spans = [self._span(attrs={"bad": [1, 2]})]
        with pytest.raises(ValueError, match="non-scalar"):
            validate_trace(self._payload(spans))

    def test_rejects_unexpected_span_keys(self):
        span = self._span()
        span["extra"] = 1
        with pytest.raises(ValueError, match="keys"):
            validate_trace(self._payload([span]))


class TestChromeTrace:
    def _traced_payload(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("check") as check_span:
                with trace_span("prune", iterations=2):
                    pass
            tracer.adopt([{"id": 1, "parent": None, "name": "shard",
                           "start": 0.0, "wall": 0.01, "cpu": 0.0,
                           "rss_kb": 0, "attrs": {}, "worker": None}],
                         parent=check_span, worker=7)
        return tracer.payload(mode="parallel", engine="polysi")

    def test_events_are_complete_with_worker_lanes(self):
        events = chrome_trace_events(self._traced_payload())
        assert all(e["ph"] == "X" for e in events)
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["shard"] == 8          # worker pid 7 -> lane 8
        assert tids["check"] == 0          # parent process lane
        assert all(e["dur"] >= 0 for e in events)

    def test_write_load_round_trip(self, tmp_path):
        payload = self._traced_payload()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(payload, path) == path
        loaded = load_chrome_trace(path)
        assert loaded == json.loads(json.dumps(payload))

    def test_load_rejects_a_file_without_the_embedded_payload(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="repro_trace"):
            load_chrome_trace(str(path))


class TestMetricsRegistry:
    def test_instruments_are_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            counter("z.total").inc()
            counter("a.total").inc(2)
            gauge("solver.conflicts").set(11)
            histogram("stage").observe(1.0)
            histogram("stage").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.total", "z.total"]
        assert snap["counters"]["a.total"] == 2
        assert snap["gauges"] == {"solver.conflicts": 11}
        assert snap["histograms"]["stage"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_ambient_helpers_resolve_against_the_installed_registry(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert current_metrics() is registry
            counter("hits").inc()
        assert current_metrics() is None
        assert registry.snapshot()["counters"] == {"hits": 1}


class TestLogging:
    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("parallel").name == "repro.parallel"
        assert get_logger("repro.online").name == "repro.online"
        assert get_logger("repro").name == "repro"

    def test_verbosity_level_mapping(self):
        assert verbosity_level(-2) == logging.ERROR
        assert verbosity_level(-1) == logging.ERROR
        assert verbosity_level(0) == logging.WARNING
        assert verbosity_level(1) == logging.INFO
        assert verbosity_level(2) == logging.DEBUG

    def test_configure_logging_is_idempotent(self):
        root = configure_logging(2)
        try:
            assert root.level == logging.DEBUG
            configure_logging(0)
            assert root.level == logging.WARNING
            assert len(root.handlers) == 1  # replaced, not stacked
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)
            root.setLevel(logging.NOTSET)
            root.propagate = True

    def test_library_modules_never_attach_handlers(self):
        import repro.core.checker  # noqa: F401 -- imported for the side check
        import repro.online.checker  # noqa: F401
        import repro.parallel.checker  # noqa: F401

        for name in ("repro.core.checker", "repro.online", "repro.parallel"):
            assert logging.getLogger(name).handlers == []
