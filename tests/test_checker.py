"""Catalog tests for the full PolySI checker: every canonical anomaly and
every canonical non-anomaly, including the paper's own figures."""

import pytest

from repro.core.checker import CheckResult, PolySIChecker, check_snapshot_isolation
from repro.core.history import ABORTED, HistoryBuilder, R, W

from _helpers import (
    build,
    causality_history,
    long_fork_history,
    lost_update_history,
    serializable_history,
    write_skew_history,
)


def verdict(history, **options) -> CheckResult:
    return check_snapshot_isolation(history, **options)


class TestValidHistories:
    def test_serializable_history_passes(self):
        assert verdict(serializable_history()).satisfies_si

    def test_write_skew_allowed_under_si(self):
        """The defining difference from serializability (Section 2.1)."""
        assert verdict(write_skew_history()).satisfies_si

    def test_single_transaction(self):
        assert verdict(build([W("x", 1), R("x", 1)])).satisfies_si

    def test_read_only_history(self):
        assert verdict(build([R("x", None)], [R("x", None)])).satisfies_si

    def test_chain_of_rmws(self):
        h = build(
            [W("x", 1)],
            [R("x", 1), W("x", 2)],
            [R("x", 2), W("x", 3)],
            [R("x", 3)],
        )
        assert verdict(h).satisfies_si

    def test_concurrent_blind_writes_ok(self):
        assert verdict(build([W("x", 1)], [W("x", 2)])).satisfies_si

    def test_init_reads_with_later_writes(self):
        h = build([R("x", None)], [W("x", 1)], [R("x", 1)])
        assert verdict(h).satisfies_si


class TestAnomalies:
    def test_long_fork_detected(self):
        res = verdict(long_fork_history())
        assert not res.satisfies_si
        assert res.cycle is not None

    def test_lost_update_detected(self):
        res = verdict(lost_update_history())
        assert not res.satisfies_si

    def test_causality_violation_detected(self):
        res = verdict(causality_history())
        assert not res.satisfies_si

    def test_read_skew_detected(self):
        h = build(
            [W("x", 0), W("y", 0)],
            [R("x", 0), R("y", 0), W("x", 1), W("y", 1)],
            [R("x", 1), R("y", 0)],
        )
        assert not verdict(h).satisfies_si

    def test_cyclic_information_flow_detected(self):
        h = build([R("y", 2), W("x", 1)], [R("x", 1), W("y", 2)])
        res = verdict(h)
        assert not res.satisfies_si
        assert res.decided_by == "encoding"  # known-edge cycle

    def test_aborted_read_detected(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], status=ABORTED)
        b.txn(1, [R("x", 1)])
        res = verdict(b.build())
        assert not res.satisfies_si
        assert res.decided_by == "axioms"
        assert res.anomalies[0].axiom == "AbortedReads"

    def test_intermediate_read_detected(self):
        h = build([W("x", 1), W("x", 2)], [R("x", 1)])
        res = verdict(h)
        assert res.decided_by == "axioms"
        assert res.anomalies[0].axiom == "IntermediateReads"

    def test_non_repeatable_read_detected(self):
        h = build([W("x", 1)], [W("x", 2)], [R("x", 1), R("x", 2)])
        res = verdict(h)
        assert not res.satisfies_si
        assert res.decided_by == "axioms"

    def test_monotonic_session_violation(self):
        h = build(
            (0, [W("x", 1)]),
            (1, [R("x", 1), W("x", 2)]),
            (2, [R("x", 2)]),
            (2, [R("x", 1)]),
        )
        assert not verdict(h).satisfies_si

    def test_stale_session_read_own_write(self):
        # A session must observe its own writes.
        h = build((0, [W("x", 1)]), (0, [R("x", None)]))
        assert not verdict(h).satisfies_si


class TestCheckerOptions:
    @pytest.mark.parametrize("options", [
        {"prune": False},
        {"compact": False},
        {"prune": False, "compact": False},
        {"closure": "numpy"},
        {"check_axioms_first": False},
    ])
    def test_variants_agree_on_catalog(self, options):
        cases = [
            (serializable_history(), True),
            (write_skew_history(), True),
            (long_fork_history(), False),
            (lost_update_history(), False),
            (causality_history(), False),
        ]
        checker = PolySIChecker(**options)
        for history, expected in cases:
            assert checker.check(history).satisfies_si == expected

    def test_unknown_closure_rejected(self):
        with pytest.raises(ValueError):
            PolySIChecker(closure="gpu")

    def test_timings_present(self):
        res = verdict(serializable_history())
        assert {"axioms", "construct", "prune", "decompose"} <= set(
            res.timings
        )
        # Pruning resolves every constraint here, so the fast path skips
        # encode+solve entirely and decides statically.
        assert res.decided_by == "static"
        assert "solve" not in res.timings
        assert res.total_time >= 0

    def test_timings_include_solve_when_constraints_survive(self):
        # Two blind writers of one key: pruning cannot order them, so the
        # constraint reaches the solver.
        res = verdict(build([W("x", 1)], [W("x", 2)]))
        assert res.satisfies_si
        assert res.decided_by == "solving"
        assert {"axioms", "construct", "prune", "encode", "solve"} <= set(
            res.timings
        )

    def test_fast_path_reports_skip_count(self):
        # Two disjoint-key serializable islands: every component is
        # constraint-free after pruning, so the solver never runs.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [R("x", 1), W("x", 2)])
        b.txn(2, [W("y", 1)])
        b.txn(3, [R("y", 1), W("y", 2)])
        res = verdict(b.build())
        assert res.satisfies_si
        assert res.stats["components"] == 2
        assert res.stats["solver_skipped_components"] == 2

    def test_describe_valid(self):
        assert "satisfies" in verdict(serializable_history()).describe()

    def test_describe_violation_mentions_cycle(self):
        text = verdict(long_fork_history()).describe()
        assert "RW" in text and "violates" in text

    def test_long_fork_witness_matches_figure_3e(self):
        """The witness cycle should be the 4-transaction WR/RW alternation
        of Figure 3(e)."""
        res = verdict(long_fork_history())
        labels = [e[2] for e in res.cycle]
        assert sorted(labels) == ["RW", "RW", "WR", "WR"]
