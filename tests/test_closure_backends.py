"""Cross-backend differential suite for the closure kernel.

The soundness argument for swapping closure backends (DESIGN.md S10) is
not a proof — it is this file: every registered
:class:`~repro.utils.closure.ClosureBackend` replays *identical*
operation scripts and must produce *identical observables* at every
step.  Three layers:

1. **Differential fuzz** — ~200 seeded random scripts (DAG-biased and
   cyclic, constructor-seeded and ``from_rows``-seeded) interleaving
   ``add_vertex`` / ``insert`` / ``compact`` with the full query
   surface, replayed in lockstep against every backend with the python
   reference as the oracle.  ``int_rows`` / ``co_rows`` must be
   byte-identical integers, ``insert`` must return the same tri-state,
   queries the same answers, ``co_materialized`` the same laziness.
2. **Property-based invariants** — each backend checked against the
   *abstract* contract, independent of any reference implementation:
   transitivity of the closure, idempotence of known inserts,
   ``reaches_any`` / ``successors`` consistency, and compaction
   preserving reachability among survivors.
3. **End-to-end parity** — ``repro.check`` over the anomaly corpus and
   valid workloads with each backend forced: identical verdicts,
   identical prune counters, valid witnesses, and the backend name
   reported in ``Report.stats``.
"""

import random

import pytest

import repro
from repro.core.polygraph import RW, build_polygraph
from repro.core.pruning import prune_constraints
from repro.utils.closure import (
    BACKEND_ENV,
    CYCLE,
    KNOWN,
    NEW,
    ClosureBackend,
    PyBitsetClosure,
    available_closure_backends,
    resolve_closure_backend,
)
from repro.utils.reachability import transitive_closure_bits
from repro.workloads.corpus import ANOMALY_TEMPLATES, make_anomaly
from repro.workloads.generator import WorkloadParams, generate_history

BACKENDS = available_closure_backends()
OTHER_BACKENDS = [b for b in BACKENDS if b != "python"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return resolve_closure_backend(request.param)


def bits_of(mask):
    out = []
    v = 0
    while mask:
        if mask & 1:
            out.append(v)
        mask >>= 1
        v += 1
    return out


# ---------------------------------------------------------------------------
# 1. Differential fuzz: identical scripts, identical observables.
# ---------------------------------------------------------------------------


def random_script(rng, *, cyclic: bool, seed_from_rows: bool):
    """One operation script: ``(op, args)`` tuples.  ``insert`` targets
    are forward-only (u < v) in DAG mode so cycles never form; cyclic
    mode draws unrestricted pairs."""
    n0 = rng.randrange(1, 10)
    script = [("init", n0, seed_from_rows)]
    for _ in range(rng.randrange(10, 40)):
        roll = rng.random()
        if roll < 0.08:
            script.append(("add_vertex",))
        elif roll < 0.55:
            script.append(("insert", rng.random(), rng.random(), cyclic))
        elif roll < 0.62:
            script.append(("compact", rng.random()))
        else:
            script.append(("query", rng.random(), rng.random()))
    return script


class Replayer:
    """Drives one backend through a script, returning an observable per
    step — the differential harness compares these across backends."""

    def __init__(self, backend_cls, rng_seed):
        self.cls = backend_cls
        self.rng = random.Random(rng_seed)
        self.closure = None

    def step(self, op):
        kind = op[0]
        if kind == "init":
            _, n0, seed_from_rows = op
            if seed_from_rows:
                edges = [(u, v) for u in range(n0) for v in range(u + 1, n0)
                         if self.rng.random() < 0.3]
                adj = [set() for _ in range(n0)]
                for u, v in edges:
                    adj[u].add(v)
                rows = transitive_closure_bits(n0, adj).rows
                self.closure = self.cls.from_rows(rows)
            else:
                self.closure = self.cls(n0)
            return ("init", self.closure.int_rows())
        c = self.closure
        n = c.num_vertices
        if kind == "add_vertex":
            return ("add_vertex", c.add_vertex())
        if kind == "insert":
            _, r1, r2, cyclic = op
            if n == 0:
                return ("insert", None)
            u = int(r1 * n)
            v = int(r2 * n)
            if not cyclic and u >= v:
                if u == v:
                    return ("insert", None)
                u, v = v, u
            return ("insert", c.insert(u, v), c.co_materialized)
        if kind == "compact":
            _, r = op
            live = [v for v in range(n)
                    if self.rng.random() < 0.3 + 0.6 * r]
            mapping = c.compact(live)
            return ("compact", mapping, c.int_rows(), c.co_materialized)
        # query: the full read surface at one (u, v) pair.
        _, r1, r2 = op
        if n == 0:
            return ("query", None)
        u = int(r1 * n)
        v = int(r2 * n)
        mask = (1 << v) | (1 << (n - 1 - v))
        return (
            "query",
            c.has(u, v),
            c.has_edge(u, v),
            c.reaches_any(u, mask),
            sorted(c.successors(u)),
            sorted(c.successors_direct(u)),
            c.int_rows(),
            c.co_rows,
        )


@pytest.mark.parametrize("cyclic", [False, True])
@pytest.mark.parametrize("seed_from_rows", [False, True])
@pytest.mark.parametrize("block", range(5))
def test_differential_fuzz(cyclic, seed_from_rows, block):
    """~200 scripts x every backend vs the python reference, observable
    by observable.  (5 blocks x 10 seeds x 4 script shapes.)"""
    if not OTHER_BACKENDS:
        pytest.skip("only the reference backend is registered")
    for seed in range(block * 10, block * 10 + 10):
        rng = random.Random((seed, cyclic, seed_from_rows).__hash__())
        script = random_script(rng, cyclic=cyclic,
                               seed_from_rows=seed_from_rows)
        ref = Replayer(PyBitsetClosure, rng_seed=seed)
        others = [(name, Replayer(resolve_closure_backend(name), seed))
                  for name in OTHER_BACKENDS]
        for step_no, op in enumerate(script):
            want = ref.step(op)
            for name, replayer in others:
                got = replayer.step(op)
                assert got == want, (name, seed, step_no, op)


def test_differential_rows_after_dense_inserts():
    """Dense eager construction: every backend's final rows and co_rows
    must be byte-identical ints, and match the batch closure."""
    rng = random.Random(99)
    n = 40
    edges = sorted({(rng.randrange(n), rng.randrange(n))
                    for _ in range(300)})
    adj = [set() for _ in range(n)]
    closures = {name: resolve_closure_backend(name)(n) for name in BACKENDS}
    for u, v in edges:
        adj[u].add(v)
        returns = {name: c.insert(u, v) for name, c in closures.items()}
        assert len(set(returns.values())) == 1, (u, v, returns)
    want = transitive_closure_bits(n, adj).rows
    # Strict closure: drop self-bits the cyclic members gained... they
    # are *kept* by the kernel; the batch closure keeps them too for
    # SCC members, so rows agree exactly.
    for name, c in closures.items():
        assert c.int_rows() == want, name
        assert c.co_rows == closures["python"].co_rows, name


# ---------------------------------------------------------------------------
# 2. Property-based invariants against the abstract contract.
# ---------------------------------------------------------------------------


def build_random(backend_cls, rng, n, m, *, dag=False):
    c = backend_cls(n)
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if dag:
            if u == v:
                continue
            if u > v:
                u, v = v, u
        c.insert(u, v)
    return c


class TestContractInvariants:
    def test_transitivity(self, backend):
        rng = random.Random(5)
        c = build_random(backend, rng, 18, 45)
        rows = c.int_rows()
        for u in range(18):
            for v in bits_of(rows[u]):
                # Everything v reaches, u reaches through v.
                assert rows[v] & ~rows[u] == 0, (u, v)

    def test_insert_idempotent_once_known(self, backend):
        rng = random.Random(6)
        c = build_random(backend, rng, 14, 30)
        rows, co = c.int_rows(), c.co_rows
        for u in range(14):
            for v in bits_of(rows[u]):
                if u == v:
                    continue
                assert c.insert(u, v) in (KNOWN, CYCLE)
        assert c.int_rows() == rows
        assert c.co_rows == co

    def test_insert_tristate_meaning(self, backend):
        c = backend(3)
        assert c.insert(0, 1) == NEW
        assert c.insert(1, 2) == NEW
        assert c.insert(0, 2) == KNOWN   # already implied
        assert c.insert(2, 0) == CYCLE   # closes the loop
        assert c.insert(0, 0) == CYCLE   # self-loop
        for u in range(3):
            for v in range(3):
                assert c.has(u, v)       # one big SCC

    def test_reaches_any_matches_successors(self, backend):
        rng = random.Random(7)
        c = build_random(backend, rng, 16, 40)
        for u in range(16):
            succ = set(c.successors(u))
            assert succ == set(bits_of(c.int_rows()[u]))
            for probe in range(8):
                mask = rng.getrandbits(16)
                assert c.reaches_any(u, mask) == bool(
                    succ & set(bits_of(mask))
                ), (u, mask)

    def test_successors_direct_subset_of_closure(self, backend):
        rng = random.Random(8)
        c = build_random(backend, rng, 16, 40, dag=True)
        for u in range(16):
            assert set(c.successors_direct(u)) <= set(c.successors(u))
            for v in c.successors_direct(u):
                assert c.has_edge(u, v)

    def test_compact_preserves_live_reachability(self, backend):
        rng = random.Random(9)
        for trial in range(10):
            c = build_random(backend, rng, 15, 35)
            before = c.int_rows()
            live = sorted(rng.sample(range(15), rng.randrange(1, 15)))
            mapping = c.compact(live)
            for old_u in live:
                for old_v in live:
                    want = bool(before[old_u] >> old_v & 1)
                    got = c.has(mapping[old_u], mapping[old_v])
                    assert got == want, (trial, old_u, old_v)

    def test_out_of_range_queries(self, backend):
        c = backend(2)
        c.insert(0, 1)
        for fn in (c.has, c.has_edge):
            with pytest.raises(IndexError):
                fn(2, 0)
            assert fn(0, 99) is False
        with pytest.raises(IndexError):
            c.reaches_any(2, 1)
        with pytest.raises(IndexError):
            c.insert(0, 2)

    def test_int_rows_is_the_portable_serialization(self, backend):
        rng = random.Random(10)
        c = build_random(backend, rng, 12, 25)
        reseeded = PyBitsetClosure.from_rows(c.int_rows())
        assert reseeded.int_rows() == c.int_rows()
        assert reseeded.co_rows == c.co_rows


# ---------------------------------------------------------------------------
# Registry resolution.
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_names_and_classes_resolve(self):
        for name in BACKENDS:
            cls = resolve_closure_backend(name)
            assert issubclass(cls, ClosureBackend)
            assert cls.name == name
            assert resolve_closure_backend(cls) is cls
            assert resolve_closure_backend(cls(2)) is cls

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_closure_backend() is PyBitsetClosure

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        for name in BACKENDS:
            assert resolve_closure_backend(name).name == name

    def test_auto_prefers_numpy_when_registered(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        expected = "numpy" if "numpy" in BACKENDS else "python"
        assert resolve_closure_backend().name == expected
        assert resolve_closure_backend("auto").name == expected

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="python"):
            resolve_closure_backend("fortran")


# ---------------------------------------------------------------------------
# 3. End-to-end parity: repro.check with each backend forced.
# ---------------------------------------------------------------------------


def assert_witness_valid(cycle):
    """A witness must be a closed cycle with no adjacent RW edges."""
    assert cycle
    for edge, nxt in zip(cycle, cycle[1:] + cycle[:1]):
        assert edge[1] == nxt[0], cycle
    labels = [e[2] for e in cycle]
    for a, b in zip(labels, labels[1:] + labels[:1]):
        assert not (a == RW and b == RW), cycle


def comparable(report):
    """Everything that must match across backends: the verdict, the
    deciding stage, evidence, and every stat except the backend name
    and the trace payload (span wall/cpu times are never replayable)."""
    stats = {k: v for k, v in report.stats.items()
             if k not in ("closure_backend", "trace")}
    return (report.ok, report.decided_by, report.cycle,
            [repr(a) for a in report.anomalies], stats)


class TestEndToEndParity:
    @pytest.mark.parametrize("name", sorted(ANOMALY_TEMPLATES))
    def test_anomaly_corpus_batch(self, name):
        for seed in (0, 3):
            history = make_anomaly(name, seed=seed, padding_txns=5)
            reports = {}
            for b in BACKENDS:
                report = repro.check(history, closure_backend=b)
                assert not report.ok, (name, b)
                assert report.stats["closure_backend"] == b
                if report.cycle:
                    assert_witness_valid(report.cycle)
                reports[b] = comparable(report)
            assert len(set(map(repr, reports.values()))) == 1, reports

    def test_valid_workload_all_modes(self):
        params = WorkloadParams(sessions=4, txns_per_session=15,
                                ops_per_txn=5, keys=50)
        history = generate_history(params, seed=2).history
        for mode in ("batch", "online"):
            reports = {}
            for b in BACKENDS:
                report = repro.check(history, mode=mode, closure_backend=b)
                assert report.ok, (mode, b)
                assert report.stats["closure_backend"] == b
                reports[b] = comparable(report)
            assert len(set(map(repr, reports.values()))) == 1, (mode, reports)

    def test_online_anomaly_parity(self):
        history = make_anomaly("lost-update", seed=1, padding_txns=4)
        reports = {}
        for b in BACKENDS:
            report = repro.check(history, mode="online", closure_backend=b)
            assert not report.ok, b
            assert report.stats["closure_backend"] == b
            reports[b] = comparable(report)
        assert len(set(map(repr, reports.values()))) == 1, reports

    def test_prune_counters_identical(self):
        """PruneResult counters (not just verdicts) must agree."""
        for name in ("long-fork", "lost-update", "read-skew"):
            history = make_anomaly(name, seed=5, padding_txns=8)
            results = {}
            for b in BACKENDS:
                graph, violations = build_polygraph(history)
                if violations:
                    break
                results[b] = prune_constraints(graph, backend=b).as_dict()
            if results:
                assert len({repr(r) for r in results.values()}) == 1, results

    def test_default_backend_reported(self):
        history = generate_history(
            WorkloadParams(sessions=3, txns_per_session=8, ops_per_txn=4,
                           keys=30), seed=4).history
        report = repro.check(history)
        assert report.stats["closure_backend"] in BACKENDS

    def test_checker_rejects_unknown_backend(self):
        with pytest.raises(Exception, match="fortran"):
            repro.Checker(closure_backend="fortran")
