"""Tests for the online incremental checker (repro.online).

The core property is *differential*: replaying any history through
:class:`OnlineChecker` must reach the same verdict as the batch
``check_snapshot_isolation`` — for accepting and violating histories,
with and without micro-batched solving, and (given a declared session
universe) with windowed eviction.
"""

import pytest

from repro.core.checker import check_snapshot_isolation
from repro.core.history import ABORTED, DuplicateValueError, HistoryBuilder, R, W
from repro.online import IncrementalClosure, OnlineChecker, WindowPolicy
from repro.online.closure import CYCLE, KNOWN, NEW
from repro.solver.monosat import AcyclicGraphSolver
from repro.storage.client import run_workload, stream_workload
from repro.storage.database import MVCCDatabase
from repro.workloads.corpus import known_anomaly_corpus
from repro.workloads.generator import WorkloadParams, generate_history, generate_workload

from _helpers import (
    build,
    causality_history,
    long_fork_history,
    lost_update_history,
    serializable_history,
    write_skew_history,
)

CANONICAL = {
    "long_fork": (long_fork_history, False),
    "lost_update": (lost_update_history, False),
    "causality": (causality_history, False),
    "write_skew": (write_skew_history, True),
    "serializable": (serializable_history, True),
}


class TestDifferentialCanonical:
    @pytest.mark.parametrize("name", sorted(CANONICAL))
    def test_matches_batch(self, name):
        make, expected = CANONICAL[name]
        history = make()
        assert check_snapshot_isolation(history).satisfies_si == expected
        result = OnlineChecker().replay(history)
        assert result.satisfies_si == expected
        assert result.final

    @pytest.mark.parametrize("name", sorted(CANONICAL))
    def test_matches_batch_microbatched(self, name):
        make, expected = CANONICAL[name]
        assert OnlineChecker(solve_every=4).replay(make()).satisfies_si \
            == expected

    def test_violation_carries_witness_cycle(self):
        result = OnlineChecker().replay(long_fork_history())
        assert not result.satisfies_si
        assert result.cycle, "cyclic violations should carry a witness"
        # The witness closes: consecutive edges chain head to tail.
        for (_, v, _, _), (u, _, _, _) in zip(result.cycle,
                                              result.cycle[1:]):
            assert v == u
        assert result.cycle[-1][1] == result.cycle[0][0]
        assert all(v in result.names for edge in result.cycle
                   for v in edge[:2])


class TestDifferentialCorpus:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_anomaly_corpus_replays(self, seed):
        for _name, history in known_anomaly_corpus(24, seed=seed):
            batch = check_snapshot_isolation(history).satisfies_si
            online = OnlineChecker().replay(history).satisfies_si
            assert online == batch

    @pytest.mark.parametrize("isolation", ["snapshot", "read_committed"])
    def test_generated_workloads(self, isolation):
        for seed in range(3):
            history = generate_history(
                WorkloadParams(sessions=4, txns_per_session=15,
                               ops_per_txn=5, keys=8, read_proportion=0.4),
                seed=seed, isolation=isolation,
            ).history
            batch = check_snapshot_isolation(history).satisfies_si
            for checker in (OnlineChecker(),
                            OnlineChecker(solve_every=8),
                            OnlineChecker(window=WindowPolicy(max_live=20,
                                                              gc_every=8),
                                          sessions=range(4))):
                assert checker.replay(history).satisfies_si == batch


class TestStreaming:
    def test_add_reports_provisional_then_final(self):
        checker = OnlineChecker()
        r = checker.add(0, [W("x", 1)])
        assert r.satisfies_si and not r.final
        checker.add(1, [R("x", 1), W("y", 2)])
        final = checker.finish()
        assert final.satisfies_si and final.final

    def test_out_of_order_read_pends_then_resolves(self):
        checker = OnlineChecker()
        checker.add(1, [R("x", 7)])           # writer not seen yet
        r = checker.add(1, [R("x", 7)])
        assert r.satisfies_si
        assert r.stats["pending_reads"] == 2
        r = checker.add(0, [W("x", 7)])       # writer arrives
        assert r.stats["pending_reads"] == 0
        assert checker.finish().satisfies_si

    def test_pending_read_unjustified_at_finish(self):
        checker = OnlineChecker()
        checker.add(0, [R("x", 99)])
        final = checker.finish()
        assert not final.satisfies_si
        assert final.decided_by == "axioms"
        assert any(a.axiom == "UnjustifiedRead" for a in final.anomalies)

    def test_late_aborted_writer_flags_reader(self):
        checker = OnlineChecker()
        checker.add(0, [R("x", 5)])           # pends
        r = checker.add(1, [W("x", 5)], status=ABORTED)
        assert not r.satisfies_si
        assert any(a.axiom == "AbortedReads" for a in r.anomalies)

    def test_early_aborted_writer_flags_reader(self):
        checker = OnlineChecker()
        checker.add(1, [W("x", 5)], status=ABORTED)
        r = checker.add(0, [R("x", 5)])
        assert not r.satisfies_si
        assert any(a.axiom == "AbortedReads" for a in r.anomalies)

    def test_intermediate_read_flagged(self):
        checker = OnlineChecker()
        checker.add(0, [W("x", 1), W("x", 2)])
        r = checker.add(1, [R("x", 1)])
        assert not r.satisfies_si
        assert any(a.axiom == "IntermediateReads" for a in r.anomalies)

    def test_duplicate_value_raises(self):
        checker = OnlineChecker()
        checker.add(0, [W("x", 1)])
        with pytest.raises(DuplicateValueError):
            checker.add(1, [W("x", 1)])

    def test_violation_latches(self):
        checker = OnlineChecker()
        history = lost_update_history()
        for txn in history.transactions:
            checker.add(txn.session, txn.ops, status=txn.status)
        first = checker.result()
        assert not first.satisfies_si
        later = checker.add(3, [W("z", 1)])
        assert later is first  # latched verdict, new input ignored

    def test_extend_microbatch(self):
        checker = OnlineChecker()
        result = checker.extend([
            (0, [W("x", 1)]),
            (1, [R("x", 1), W("y", 2)]),
            (2, [R("y", 2)]),
        ])
        assert result.satisfies_si
        assert checker.finish().satisfies_si

    def test_stream_source_matches_run_workload(self):
        params = WorkloadParams(sessions=3, txns_per_session=6,
                                ops_per_txn=4, keys=6)
        spec = generate_workload(params, seed=5)
        streamed = list(stream_workload(MVCCDatabase(seed=5), spec, seed=5))
        run = run_workload(MVCCDatabase(seed=5), spec, seed=5)
        assert len(streamed) == len(run.history)
        committed = sum(1 for _s, _o, st in streamed if st == "committed")
        assert committed == run.committed


class TestWindowEviction:
    def test_window_requires_sessions(self):
        with pytest.raises(ValueError):
            OnlineChecker(window=WindowPolicy(max_live=8))

    def test_undeclared_session_rejected(self):
        checker = OnlineChecker(window=WindowPolicy(max_live=8),
                                sessions=[0, 1])
        checker.add(0, [W("x", 1)])
        with pytest.raises(ValueError):
            checker.add(5, [W("y", 1)])

    def test_no_eviction_until_all_sessions_commit(self):
        checker = OnlineChecker(window=WindowPolicy(max_live=2, gc_every=1),
                                sessions=[0, 1])
        for i in range(8):
            checker.add(0, [W("x", i)])
        # Session 1 has never committed: its first transaction may read
        # any version, so nothing is evictable yet.
        assert checker.live_transactions == 8

    def test_superseded_versions_evicted(self):
        checker = OnlineChecker(window=WindowPolicy(max_live=4, gc_every=1),
                                sessions=[0, 1])
        checker.add(1, [W("y", 0)])
        for i in range(12):
            # Session 0 overwrites x; session 1 reads the latest x, so
            # every version order resolves and old writers close over.
            checker.add(0, [W("x", i)])
            checker.add(1, [R("x", i)])
        result = checker.finish()
        assert result.satisfies_si
        assert result.stats["window"]["evicted"] > 0
        assert checker.live_transactions < 25

    def test_eviction_preserves_stale_read_violation(self):
        """A read of an evicted version is still reported as a violation
        (unjustified read instead of a cycle — same verdict)."""
        checker = OnlineChecker(window=WindowPolicy(max_live=2, gc_every=1),
                                sessions=[0, 1])
        checker.add(0, [W("x", 0)])
        for i in range(1, 10):
            checker.add(0, [W("x", i)])
            checker.add(1, [R("x", i)])
        assert ("x", 0) not in checker._writer_index, (
            "the superseded x=0 version should have been evicted"
        )
        assert checker.live_transactions < 19
        checker.add(1, [R("x", 0)])  # stale read of the evicted version
        final = checker.finish()
        assert not final.satisfies_si

    def test_batch_agrees_stale_read_is_violation(self):
        """The windowed verdict above matches the unwindowed world."""
        b = HistoryBuilder()
        b.txn(0, [W("x", 0)])
        for i in range(1, 10):
            b.txn(0, [W("x", i)])
            b.txn(1, [R("x", i)])
        b.txn(1, [R("x", 0)])
        assert not check_snapshot_isolation(b.build()).satisfies_si

    def test_compaction_keeps_checking_correct(self):
        policy = WindowPolicy(max_live=4, gc_every=1, compact_fraction=0.1)
        checker = OnlineChecker(window=policy, sessions=[0, 1])
        checker.add(1, [W("y", 0)])
        for i in range(20):
            checker.add(0, [W("x", i)])
            checker.add(1, [R("x", i)])
        result = checker.finish()
        assert result.satisfies_si
        assert result.stats["window"]["compactions"] > 0
        # Violations are still caught after compaction remapped vertices:
        # both transactions read x=19 then overwrite x (a lost update).
        checker.add(0, [R("x", 19), W("x", 100)])
        checker.add(1, [R("x", 19), W("x", 101)])
        final = checker.finish()
        assert not final.satisfies_si


class TestIncrementalClosure:
    def test_insert_and_query(self):
        c = IncrementalClosure(4)
        assert c.insert(0, 1) == NEW
        assert c.insert(1, 2) == NEW
        assert c.has(0, 2) and not c.has(2, 0)
        assert c.insert(0, 2) == KNOWN
        assert c.insert(2, 0) == CYCLE

    def test_ancestors_updated(self):
        c = IncrementalClosure(5)
        c.insert(0, 1)
        c.insert(2, 3)
        c.insert(1, 2)          # joins the two chains
        assert c.has(0, 3)
        assert list(c.successors(0)) == [1, 2, 3]

    def test_self_loop_is_cycle(self):
        c = IncrementalClosure(2)
        assert c.insert(1, 1) == CYCLE

    def test_compact_preserves_transitive_paths(self):
        c = IncrementalClosure(4)
        c.insert(0, 1)
        c.insert(1, 2)
        c.insert(2, 3)
        mapping = c.compact([0, 1, 3])   # evict vertex 2
        assert mapping == [0, 1, -1, 2]
        assert c.num_vertices == 3
        assert c.has(0, 2)               # old 0 ~> old 3, through evicted 2
        assert c.has(1, 2)
        assert not c.has(2, 0)


class TestIncrementalSolver:
    def test_add_vertex_and_static_edge(self):
        s = AcyclicGraphSolver(2, static_adj=[[1], []])
        v = s.add_vertex()
        assert v == 2
        assert s.add_static_edge(1, 2) is None
        assert s.add_static_edge(2, 0) == []   # closes a static cycle

    def test_static_edge_conflict_reports_var_edges(self):
        s = AcyclicGraphSolver(3)
        e = s.new_var()
        s.add_edge(e, 1, 2)
        s.add_clause([e])                      # edge 1->2 is a fact
        assert s.solve()
        conflict = s.add_static_edge(2, 1)
        assert conflict == [e]

    def test_resolve_after_adding_clauses(self):
        """Solve / add clauses / solve again on one instance, keeping
        learned state — the online checker's usage pattern."""
        s = AcyclicGraphSolver(3)
        a, b = s.new_var(), s.new_var()
        s.add_edge(a, 0, 1)
        s.add_edge(b, 1, 0)
        s.add_clause([a, b])
        assert s.solve()
        s.add_clause([a])
        assert s.solve()
        assert s.model_value(a)
        s.add_clause([b])                      # now both edges: a cycle
        assert not s.solve()


class TestOnlineCLI:
    def test_watch_healthy_exit_zero(self, capsys):
        from repro.cli import main
        code = main(["watch", "--sessions", "3", "--txns", "6",
                     "--keys", "8", "--report-every", "0"])
        assert code == 0
        assert "satisfies snapshot isolation" in capsys.readouterr().out

    def test_watch_faulty_exit_one(self, capsys):
        from repro.cli import main
        code = main(["watch", "--sessions", "4", "--txns", "15",
                     "--keys", "6", "--profile", "mysql-galera-sim",
                     "--report-every", "0"])
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_check_stream_flag(self, tmp_path):
        from repro.cli import main
        from repro.histories.codec import dump_history
        ok = tmp_path / "ok.json"
        bad = tmp_path / "bad.json"
        dump_history(serializable_history(), str(ok))
        dump_history(long_fork_history(), str(bad))
        assert main(["check", str(ok), "--stream"]) == 0
        assert main(["check", str(bad), "--stream"]) == 1
        assert main(["check", str(ok), "--stream", "--solve-every", "4"]) == 0


class TestDocsDeliverables:
    """The documentation satellite is a deliverable; pin its presence."""

    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md"])
    def test_doc_exists_and_mentions_online(self, name):
        import os
        path = os.path.join(os.path.dirname(__file__), "..", name)
        assert os.path.exists(path), f"{name} missing"
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "online" in text.lower()
        assert len(text) > 1000
