"""Every example script must run cleanly end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable.  Each runs in a subprocess with a generous timeout and must
exit 0 with its expected headline output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = {
    "quickstart.py": ["lost update", "satisfies SI"],
    "audit_database.py": ["violation after", "no violation in"],
    "social_network.py": ["classification"],
    "list_append_elle.py": ["violation (correct!)"],
    "compare_checkers.py": ["sessions"],
    "collect_sqlite.py": ["satisfies SI", "anomaly class"],
    "online_monitoring.py": ["ms/txn amortized", "violation detected"],
    "parallel_checking.py": ["verdicts agree", "anomaly class"],
}


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, (name, result.stderr[-2000:])
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    stdout = run_example(name)
    for expected in CASES[name]:
        assert expected in stdout, (name, expected, stdout[-2000:])
