"""Round-trip tests for history serialization (repro.histories.codec)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import ABORTED, HistoryBuilder, R, W
from repro.histories.codec import (
    dump_history,
    history_from_json,
    history_from_text,
    history_to_json,
    history_to_text,
    load_history,
)
from repro.workloads.random_histories import random_history


def histories_equal(a, b) -> bool:
    if len(a.sessions) != len(b.sessions):
        return False
    for sa, sb in zip(a.sessions, b.sessions):
        if len(sa) != len(sb):
            return False
        for ta, tb in zip(sa, sb):
            if ta.status != tb.status or list(ta.ops) != list(tb.ops):
                return False
    return True


def sample_history():
    b = HistoryBuilder()
    b.txn(0, [W("x", 1), R("y", None)])
    b.txn(1, [R("x", 1), W("y", 2)])
    b.txn(0, [W("x", 3)], status=ABORTED)
    return b.build()


class TestJson:
    def test_roundtrip(self):
        h = sample_history()
        assert histories_equal(h, history_from_json(history_to_json(h)))

    def test_preserves_aborted_status(self):
        h = sample_history()
        back = history_from_json(history_to_json(h))
        assert back.sessions[0][1].status == ABORTED

    def test_initial_value_roundtrip(self):
        h = sample_history()
        back = history_from_json(history_to_json(h))
        assert back.sessions[0][0].ops[1].value is None

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_roundtrip(self, seed):
        rng = random.Random(seed)
        h = random_history(rng, sessions=3, txns_per_session=2, abort_prob=0.2)
        assert histories_equal(h, history_from_json(history_to_json(h)))


class TestText:
    def test_roundtrip(self):
        h = sample_history()
        assert histories_equal(h, history_from_text(history_to_text(h)))

    def test_format_is_line_based(self):
        text = history_to_text(sample_history())
        lines = [l for l in text.splitlines() if l]
        assert len(lines) == 3
        assert lines[0].startswith("0 c |")
        assert lines[1].startswith("0 a |")
        assert lines[2].startswith("1 c |")

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 c | w(x,1)\n"
        h = history_from_text(text)
        assert len(h) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            history_from_text("0 zombie | w(x,1)")
        with pytest.raises(ValueError):
            history_from_text("0 c | q(x,1)")

    def test_initial_marker(self):
        h = history_from_text("0 c | r(x,_)")
        assert h.sessions[0][0].ops[0].value is None

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_roundtrip(self, seed):
        rng = random.Random(seed)
        h = random_history(rng, sessions=2, txns_per_session=2, abort_prob=0.2)
        assert histories_equal(h, history_from_text(history_to_text(h)))


class TestFileIO:
    @pytest.mark.parametrize("fmt", ["json", "text"])
    def test_dump_load(self, tmp_path, fmt):
        h = sample_history()
        path = tmp_path / f"history.{fmt}"
        dump_history(h, str(path), fmt=fmt)
        assert histories_equal(h, load_history(str(path), fmt=fmt))

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            dump_history(sample_history(), str(tmp_path / "x"), fmt="xml")

    def test_verdict_survives_roundtrip(self):
        """Serialization must not change the checker's verdict."""
        from repro import check_snapshot_isolation
        from _helpers import long_fork_history

        h = long_fork_history()
        back = history_from_json(history_to_json(h))
        assert (
            check_snapshot_isolation(h).satisfies_si
            == check_snapshot_isolation(back).satisfies_si
            == False  # noqa: E712
        )


class TestTimestamps:
    """Optional per-transaction (start_ts, commit_ts) fields: strictly
    additive, exactly round-tripped, and absent files stay loadable."""

    def stamped_history(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], start_ts=0.0, commit_ts=1.0)
        b.txn(1, [R("x", 1), W("y", 2)], start_ts=1.5, commit_ts=2.5)
        b.txn(0, [R("y", 2)], start_ts=3.0, commit_ts=3.5)
        b.txn(1, [W("y", 9)], status=ABORTED)
        return b.build()

    def assert_stamps_equal(self, a, b):
        for sa, sb in zip(a.sessions, b.sessions):
            for ta, tb in zip(sa, sb):
                assert (ta.start_ts, ta.commit_ts) == \
                    (tb.start_ts, tb.commit_ts), (ta.name, tb.name)

    def test_json_roundtrip_preserves_timestamps(self):
        h = self.stamped_history()
        back = history_from_json(history_to_json(h))
        assert histories_equal(h, back)
        self.assert_stamps_equal(h, back)

    def test_text_roundtrip_preserves_timestamps(self):
        h = self.stamped_history()
        back = history_from_text(history_to_text(h))
        assert histories_equal(h, back)
        self.assert_stamps_equal(h, back)

    @pytest.mark.parametrize("fmt", ["json", "text"])
    def test_dump_load_preserves_timestamps(self, tmp_path, fmt):
        h = self.stamped_history()
        path = tmp_path / f"history.{fmt}"
        dump_history(h, str(path), fmt=fmt)
        self.assert_stamps_equal(h, load_history(str(path), fmt=fmt))

    def test_untimestamped_history_roundtrips_without_ts_fields(self):
        import json

        h = sample_history()
        payload = json.loads(history_to_json(h))
        assert all("ts" not in txn
                   for sess in payload["sessions"] for txn in sess)
        back = history_from_json(history_to_json(h))
        assert all(t.start_ts is None and t.commit_ts is None
                   for t in back.transactions)

    def test_malformed_text_timestamp_token_rejected(self):
        with pytest.raises(ValueError, match="malformed timestamp"):
            history_from_text("s0 c 1.0:bogus | w(x)=1")

    def test_pre_timestamp_file_loads_but_timestamp_engine_rejects(
            self, tmp_path):
        """A history written before timestamp capture existed (no "ts"
        fields anywhere) must load cleanly — and the ``timestamp``
        engine must reject it with an actionable error, not crash or
        guess."""
        from repro.api import MissingTimestampsError, check

        path = tmp_path / "pre-pr8.json"
        dump_history(sample_history(), str(path), fmt="json")
        legacy = load_history(str(path), fmt="json")
        assert check(legacy).ok  # timestamp-free engines are unaffected
        with pytest.raises(MissingTimestampsError,
                           match="re-collect with a current adapter"):
            check(legacy, engine="timestamp")


class TestEventCodec:
    """repro-events/1: the streaming event-line format."""

    def stamped_history(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], start_ts=1.0, commit_ts=2.0)
        b.txn(1, [R("x", 1), W("y", 2)], start_ts=1.5, commit_ts=2.5)
        b.txn(0, [R("y", 2)])
        b.txn(1, [W("y", 9)], status=ABORTED)
        return b.build()

    def test_single_event_roundtrip(self):
        from repro.histories.codec import event_from_json, event_to_json

        event = (3, (W("x", 1), R("y", None)), "committed", (1.0, 2.0))
        assert event_from_json(event_to_json(event)) == event

    def test_event_without_ts_roundtrips_with_none(self):
        from repro.histories.codec import event_from_json, event_to_json

        event = (0, (W("x", 1),), "committed")
        line = event_to_json(event)
        assert '"ts"' not in line
        assert event_from_json(line) == (0, (W("x", 1),), "committed", None)

    def test_history_event_roundtrip_is_byte_identical(self):
        """history -> events -> JSONL -> events -> history reproduces
        the exact bytes of both history codecs (the acceptance
        property for repro-events/1)."""
        from repro.histories.codec import (
            events_from_jsonl,
            events_to_jsonl,
            history_from_events,
            history_to_events,
        )

        h = self.stamped_history()
        wire = events_to_jsonl(history_to_events(h))
        back = history_from_events(events_from_jsonl(wire))
        assert history_to_json(back) == history_to_json(h)
        assert history_to_text(back) == history_to_text(h)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_history_event_roundtrip_property(self, seed):
        """Property form over random histories (including aborted
        transactions): the event stream is a lossless representation."""
        from repro.histories.codec import (
            events_from_jsonl,
            events_to_jsonl,
            history_from_events,
            history_to_events,
        )

        h = random_history(random.Random(seed), sessions=4,
                           txns_per_session=3, keys=4, abort_prob=0.2)
        wire = events_to_jsonl(history_to_events(h))
        back = history_from_events(events_from_jsonl(wire))
        assert history_to_json(back) == history_to_json(h)

    def test_pre_ts_event_lines_accepted_with_honest_fraction(self):
        """Event lines from a pre-timestamp producer (no "ts" key
        anywhere) parse fine and the rebuilt history reports a 0.0
        timestamped fraction — never a fabricated stamp."""
        from repro.histories.codec import events_from_jsonl, history_from_events

        wire = (
            '{"session": 0, "status": "committed", "ops": [["w", "x", 1]]}\n'
            '{"session": 1, "status": "committed", "ops": [["r", "x", 1]]}\n'
        )
        h = history_from_events(events_from_jsonl(wire))
        assert h.timestamped_fraction == 0.0
        assert all(t.start_ts is None for t in h.transactions)

    def test_mixed_ts_presence_gives_partial_fraction(self):
        from repro.histories.codec import events_from_jsonl, history_from_events

        wire = (
            '{"session": 0, "status": "committed", "ops": [["w", "x", 1]], '
            '"ts": [1.0, 2.0]}\n'
            '{"session": 1, "status": "committed", "ops": [["r", "x", 1]]}\n'
        )
        h = history_from_events(events_from_jsonl(wire))
        assert h.timestamped_fraction == 0.5

    def test_blank_and_comment_lines_skipped(self):
        from repro.histories.codec import events_from_jsonl

        wire = ('# a comment\n\n'
                '{"session": 0, "status": "committed", '
                '"ops": [["w", "x", 1]]}\n')
        assert len(events_from_jsonl(wire)) == 1

    @pytest.mark.parametrize("line,needle", [
        ('{"session": 0, "status": "committed", "ops": [], "extra": 1}',
         "unknown event field"),
        ('{"session": 0, "ops": []}', "missing"),
        ('{"session": "a", "status": "committed", "ops": []}',
         "must be an int"),
        ('{"session": 0, "status": "maybe", "ops": []}', "unknown event status"),
        ('{"session": 0, "status": "committed", "ops": [["w", "x"]]}',
         "malformed event op"),
        ('{"session": 0, "status": "committed", "ops": [["w","x",1]], '
         '"ts": [1.0]}', "ts must be"),
        ('not json', "malformed event line"),
        ('[1, 2]', "JSON object"),
        # Unhashable keys/values (JSON arrays/objects) must die at the
        # codec, not later inside a checker's key/value maps.
        ('{"session": 0, "status": "committed", "ops": [["w", ["x"], 1]]}',
         "JSON scalar"),
        ('{"session": 0, "status": "committed", '
         '"ops": [["w", "x", {"v": 1}]]}', "JSON scalar"),
        ('{"session": 0, "status": "committed", "ops": [[1, "x", 1]]}',
         "kind must be a string"),
        ('{"session": 0, "status": "committed", "ops": [["q", "x", 1]]}',
         "unknown operation kind"),
        ('{"session": 0, "status": "committed", "ops": [["w","x",1]], '
         '"ts": ["a", 2.0]}', "numbers or null"),
    ])
    def test_malformed_event_lines_rejected(self, line, needle):
        from repro.histories.codec import event_from_json

        with pytest.raises(ValueError, match=needle):
            event_from_json(line)

    def test_collection_run_events_roundtrip_through_wire(self):
        """A real collection's event feed crosses the wire losslessly:
        serializing CollectionRun.iter_events() and rebuilding yields
        the collected history byte-for-byte."""
        from repro.collect import Collector, SQLiteAdapter
        from repro.histories.codec import (
            events_from_jsonl,
            events_to_jsonl,
            history_from_events,
        )
        from repro.workloads.generator import WorkloadParams, generate_workload

        spec = generate_workload(
            WorkloadParams(sessions=3, txns_per_session=4, ops_per_txn=3,
                           keys=8, read_proportion=0.5,
                           distribution="uniform"),
            seed=7,
        )
        adapter = SQLiteAdapter()
        try:
            run = Collector(adapter).run(spec)
        finally:
            adapter.close()
        wire = events_to_jsonl(run.iter_events())
        back = history_from_events(events_from_jsonl(wire))
        assert history_to_json(back) == history_to_json(run.history)
