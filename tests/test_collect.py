"""Live-database collection harness (repro.collect).

The SQLite adapter is the reference backend: WAL-mode SQLite serializes
transactions, so every collected history must satisfy SI — any
violation indicts the harness, not the database.  The suite checks the
adapters individually, the threaded collector's accounting, the codec
round trip, verdict agreement across the batch/online/parallel
checkers, and the anomaly-injecting wrapper's violation path.
"""

import os

import pytest

from repro.collect import (
    ADAPTERS,
    AdapterUnavailable,
    CollectOptions,
    Collector,
    DBAPIAdapter,
    FaultyAdapter,
    INJECTION_PROFILES,
    InjectionConfig,
    SQLiteAdapter,
    TransactionAborted,
    collect_history,
    make_adapter,
)
from repro.core.checker import check_snapshot_isolation
from repro.core.history import ABORTED, COMMITTED, INITIAL_VALUE
from repro.histories.codec import history_from_json, history_to_json
from repro.interpret import interpret_violation
from repro.online import OnlineChecker
from repro.parallel import ParallelChecker
from repro.workloads.generator import WorkloadParams, generate_workload

SMALL = WorkloadParams(
    sessions=4,
    txns_per_session=8,
    ops_per_txn=4,
    keys=10,
    read_proportion=0.5,
    distribution="uniform",
)

#: The acceptance-criteria shape: >= 200 transactions over 8 sessions.
#: Uniform over 40 keys keeps constraint counts sane so the *online*
#: verdict-agreement tests stay fast.
ACCEPTANCE = WorkloadParams(
    sessions=8,
    txns_per_session=25,
    ops_per_txn=5,
    keys=40,
    read_proportion=0.5,
    distribution="uniform",
)

#: Contended shape for the injection tests: hot keys make planted
#: stale reads collide with real observations quickly.
HOTSPOT = WorkloadParams(
    sessions=8,
    txns_per_session=25,
    ops_per_txn=5,
    keys=12,
    read_proportion=0.5,
    distribution="hotspot",
)


class TestSQLiteAdapter:
    def test_single_session_read_write_commit(self):
        adapter = SQLiteAdapter()
        try:
            adapter.setup()
            session = adapter.session(0)
            session.begin()
            assert session.read("x") is INITIAL_VALUE
            session.write("x", 7)
            assert session.read("x") == 7
            assert session.commit() is True
            session.begin()
            assert session.read("x") == 7
            assert session.commit() is True
            session.close()
        finally:
            adapter.close()

    def test_abort_rolls_back(self):
        adapter = SQLiteAdapter()
        try:
            adapter.setup()
            session = adapter.session(0)
            session.begin()
            session.write("x", 1)
            session.abort()
            session.begin()
            assert session.read("x") is INITIAL_VALUE
            session.commit()
            session.close()
        finally:
            adapter.close()

    def test_temp_file_removed_on_close(self):
        adapter = SQLiteAdapter()
        adapter.setup()
        path = adapter.path
        assert os.path.exists(path)
        adapter.close()
        assert not os.path.exists(path)


class TestDBAPIAdapter:
    def test_sqlite3_is_a_dbapi_driver(self, tmp_path):
        adapter = DBAPIAdapter("sqlite3", dsn=str(tmp_path / "kv.db"))
        adapter.setup()
        session = adapter.session(0)
        session.begin()
        assert session.read("k") is INITIAL_VALUE
        session.write("k", 42)
        assert session.commit() is True
        session.begin()
        assert session.read("k") == 42
        session.commit()
        session.close()

    def test_missing_driver_raises_unavailable(self):
        with pytest.raises(AdapterUnavailable):
            DBAPIAdapter("no_such_db_driver_module")

    def test_collection_through_dbapi(self, tmp_path):
        adapter = DBAPIAdapter("sqlite3", dsn=str(tmp_path / "kv.db"))
        run = collect_history(adapter, SMALL, seed=5)
        assert len(run.history) > 0
        assert check_snapshot_isolation(run.history).satisfies_si


class TestAdapterRegistry:
    def test_make_adapter_sqlite(self):
        adapter = make_adapter("sqlite")
        assert isinstance(adapter, SQLiteAdapter)
        adapter.close()

    def test_unknown_adapter(self):
        with pytest.raises(ValueError, match="unknown adapter"):
            make_adapter("oracle-9i")

    def test_registry_names(self):
        assert set(ADAPTERS) == {"sqlite", "dbapi"}


class TestCollector:
    def test_accounting_adds_up(self):
        run = collect_history(SQLiteAdapter(), ACCEPTANCE, seed=3)
        assert run.committed + run.aborted == len(run.history)
        # Every attempt either committed, terminally aborted, or was a
        # dropped retry.
        assert run.attempts == run.committed + run.aborted + run.retried
        assert run.committed >= 0.8 * ACCEPTANCE.total_txns
        assert run.throughput > 0

    def test_events_match_history(self):
        run = collect_history(SQLiteAdapter(), SMALL, seed=5)
        assert len(run.events) == len(run.history)
        statuses = [status for _, _, status, _ in run.events]
        assert statuses.count(COMMITTED) == run.committed
        assert statuses.count(ABORTED) == run.aborted

    def test_drop_aborted_keeps_history_committed_only(self):
        run = collect_history(
            SQLiteAdapter(), ACCEPTANCE, seed=3,
            options=CollectOptions(retries=0, record_aborted=False),
        )
        assert all(t.committed for t in run.history)

    def test_retries_zero_records_every_abort(self):
        run = collect_history(
            SQLiteAdapter(), ACCEPTANCE, seed=3,
            options=CollectOptions(retries=0),
        )
        assert run.retried == 0
        assert run.attempts == run.committed + run.aborted

    def test_options_validation(self):
        with pytest.raises(ValueError):
            CollectOptions(retries=-1)
        with pytest.raises(ValueError):
            collect_history(SQLiteAdapter(), SMALL, spec=[[]])
        with pytest.raises(ValueError):
            collect_history(SQLiteAdapter())


class _FlakyBeginSession:
    """Stub session whose ``begin`` aborts once before succeeding."""

    def __init__(self, store):
        self._store = store
        self._begins = 0
        self._buffer = {}

    def begin(self):
        self._begins += 1
        if self._begins == 1:
            raise TransactionAborted("transient begin failure")
        self._buffer = {}

    def read(self, key):
        return self._buffer.get(key, self._store.get(key, INITIAL_VALUE))

    def write(self, key, value):
        self._buffer[key] = value

    def commit(self):
        self._store.update(self._buffer)
        return True

    def abort(self):
        self._buffer = {}

    def close(self):
        pass


class TestCollectorFailureModes:
    def test_session_creation_failure_does_not_deadlock(self):
        class BrokenAdapter(SQLiteAdapter):
            def session(self, session_id):
                if session_id == 1:
                    raise RuntimeError("connection refused")
                return super().session(session_id)

        adapter = BrokenAdapter()
        try:
            with pytest.raises(RuntimeError, match="connection refused"):
                Collector(adapter).run(generate_workload(SMALL, seed=5))
        finally:
            adapter.close()

    def test_rerun_on_same_adapter_starts_clean(self):
        adapter = SQLiteAdapter()
        try:
            collector = Collector(adapter)
            spec = generate_workload(SMALL, seed=5)
            first = collector.run(spec)
            second = collector.run(spec)
            # Leftover values from run 1 must not surface in run 2 as
            # reads of values nobody wrote.
            assert check_snapshot_isolation(first.history).satisfies_si
            assert check_snapshot_isolation(second.history).satisfies_si
        finally:
            adapter.close()

    def test_abort_at_begin_engages_retry(self):
        class FlakyAdapter(SQLiteAdapter):
            def __init__(self):
                super().__init__()
                self.store = {}

            def setup(self):
                pass

            def teardown(self):
                pass

            def session(self, session_id):
                return _FlakyBeginSession(self.store)

        adapter = FlakyAdapter()
        try:
            run = Collector(adapter).run([[[("w", "k", 1)]]])
            assert run.committed == 1
            assert run.retried == 1
        finally:
            adapter.close()


class TestRoundTrip:
    """The acceptance loop: collect from live SQLite, encode, reload,
    and agree on the verdict across all three checkers."""

    @pytest.fixture(scope="class")
    def collected(self):
        return collect_history(SQLiteAdapter(), ACCEPTANCE, seed=3)

    def test_history_is_valid_and_si(self, collected):
        collected.history.validate()
        assert check_snapshot_isolation(collected.history).satisfies_si

    def test_codec_round_trip_preserves_verdict(self, collected):
        reloaded = history_from_json(history_to_json(collected.history))
        assert len(reloaded) == len(collected.history)
        assert check_snapshot_isolation(reloaded).satisfies_si

    def test_online_verdict_agrees(self, collected):
        result = OnlineChecker().replay(collected.history)
        assert result.satisfies_si

    def test_online_event_feed_agrees(self, collected):
        checker = OnlineChecker(solve_every=8)
        for session, ops, status, _ in collected.events:
            assert checker.add(session, ops, status=status).satisfies_si
        assert checker.finish().satisfies_si

    def test_parallel_verdict_agrees(self, collected):
        with ParallelChecker(workers=2) as checker:
            assert checker.check(collected.history).satisfies_si


class TestFaultyAdapter:
    def test_profile_validation(self):
        inner = SQLiteAdapter()
        with pytest.raises(ValueError, match="unknown injection profile"):
            FaultyAdapter(inner, profile="bit-rot")
        with pytest.raises(ValueError, match="exactly one"):
            FaultyAdapter(inner)
        with pytest.raises(ValueError, match="exactly one"):
            FaultyAdapter(inner, profile="stale-reads",
                          config=InjectionConfig())
        inner.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InjectionConfig(stale_read_prob=1.5)
        with pytest.raises(ValueError):
            InjectionConfig(stale_read_depth=0)

    @pytest.mark.parametrize("profile", sorted(INJECTION_PROFILES))
    def test_injection_yields_classified_violation(self, profile):
        adapter = FaultyAdapter(SQLiteAdapter(), profile=profile, seed=1)
        run = collect_history(adapter, HOTSPOT, seed=3)
        result = check_snapshot_isolation(run.history)
        assert not result.satisfies_si
        example = interpret_violation(result)
        assert example.classification

    def test_injected_history_round_trips_and_checkers_agree(self):
        adapter = FaultyAdapter(SQLiteAdapter(), profile="lost-update",
                                seed=1)
        run = collect_history(adapter, HOTSPOT, seed=3)
        reloaded = history_from_json(history_to_json(run.history))
        assert not check_snapshot_isolation(reloaded).satisfies_si
        assert not OnlineChecker().replay(reloaded).satisfies_si
        with ParallelChecker(workers=2) as checker:
            assert not checker.check(reloaded).satisfies_si


class TestCollectCLI:
    def test_collect_check_exit_zero(self, capsys):
        from repro.cli import main

        code = main([
            "collect", "--adapter", "sqlite", "--sessions", "4",
            "--txns", "6", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "collected" in out
        assert "satisfies" in out

    def test_collect_inject_exit_one_with_classification(self, capsys):
        from repro.cli import main

        code = main([
            "collect", "--sessions", "8", "--txns", "25", "--keys", "12",
            "--dist", "hotspot", "--inject", "lost-update", "--check",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "violates" in out
        assert "anomaly class:" in out

    def test_collect_out_round_trips_through_check(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "live.json"
        assert main([
            "collect", "--sessions", "3", "--txns", "5",
            "-o", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["check", str(path)]) == 0

    def test_collect_parallel_check(self, capsys):
        from repro.cli import main

        code = main([
            "collect", "--sessions", "4", "--txns", "6",
            "--parallel", "2",
        ])
        assert code == 0
        assert "satisfies" in capsys.readouterr().out

    def test_dbapi_requires_driver(self, capsys):
        from repro.cli import main

        assert main(["collect", "--adapter", "dbapi", "--check"]) == 2
        assert "--driver" in capsys.readouterr().err
        assert main(["collect", "--adapter", "dbapi", "--driver",
                     "sqlite3", "--check"]) == 2
        assert "--dsn" in capsys.readouterr().err

    def test_missing_driver_exits_two(self, capsys):
        from repro.cli import main

        code = main([
            "collect", "--adapter", "dbapi",
            "--driver", "no_such_db_driver_module", "--check",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_dbapi_driver_through_cli(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "collect", "--adapter", "dbapi", "--driver", "sqlite3",
            "--dsn", str(tmp_path / "kv.db"), "--sessions", "3",
            "--txns", "4", "--check",
        ])
        assert code == 0
        assert "dbapi:sqlite3" in capsys.readouterr().out


class TestIterEvents:
    """CollectionRun.iter_events: the public commit-order event feed."""

    def test_yields_commit_order_4_tuples(self):
        run = collect_history(SQLiteAdapter(), SMALL, seed=5)
        events = list(run.iter_events())
        assert events == list(run.events)
        assert len(events) == len(run.history)
        for session, ops, status, ts in events:
            assert isinstance(session, int)
            assert status in (COMMITTED, ABORTED)
            assert len(ops) >= 1
            assert ts is None or len(ts) == 2

    def test_is_a_fresh_generator_each_call(self):
        run = collect_history(SQLiteAdapter(), SMALL, seed=5)
        first = list(run.iter_events())
        assert list(run.iter_events()) == first  # not a one-shot iterator

    def test_feed_replays_into_online_checker(self):
        """The documented contract: iter_events() drives OnlineChecker
        to the same verdict as the batch check of run.history."""
        run = collect_history(SQLiteAdapter(), SMALL, seed=5)
        checker = OnlineChecker()
        for session, ops, status, _ts in run.iter_events():
            checker.add(session, ops, status=status)
        online = checker.finish()
        batch = check_snapshot_isolation(run.history)
        assert online.satisfies_si == batch.satisfies_si
