"""Tests for the TCC and Read Atomicity checkers (repro.extensions.causal).

The load-bearing property is Figure 1's hierarchy: SER > SI > TCC > RA.
Every SI-consistent history must satisfy TCC and RA; the classic
anomalies separate the levels exactly as the literature says.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checker import check_snapshot_isolation
from repro.core.history import ABORTED, HistoryBuilder, R, W
from repro.extensions import (
    check_read_atomicity,
    check_transactional_causal_consistency,
)
from repro.storage.faults import FaultConfig
from repro.workloads.corpus import make_anomaly
from repro.workloads.generator import WorkloadParams, generate_history
from repro.workloads.random_histories import random_history

from _helpers import (
    build,
    causality_history,
    long_fork_history,
    lost_update_history,
    serializable_history,
    write_skew_history,
)


class TestLevelSeparations:
    """The classic anomalies land exactly between the levels."""

    def test_long_fork_separates_si_from_tcc(self):
        h = long_fork_history()
        assert not check_snapshot_isolation(h).satisfies_si
        assert check_transactional_causal_consistency(h).satisfies

    def test_lost_update_separates_si_from_tcc(self):
        h = lost_update_history()
        assert not check_snapshot_isolation(h).satisfies_si
        assert check_transactional_causal_consistency(h).satisfies

    def test_causality_violation_separates_tcc_from_ra(self):
        h = causality_history()
        assert not check_transactional_causal_consistency(h).satisfies
        assert check_read_atomicity(h).satisfies

    def test_fractured_read_violates_ra(self):
        h = make_anomaly("read-skew", seed=1)
        result = check_read_atomicity(h)
        assert not result.satisfies
        assert any(a.axiom == "FracturedRead" for a in result.anomalies)

    def test_valid_histories_pass_everything(self):
        for h in (serializable_history(), write_skew_history()):
            assert check_transactional_causal_consistency(h).satisfies
            assert check_read_atomicity(h).satisfies


class TestTccBadPatterns:
    def test_write_co_read(self):
        # w -CO-> w' -CO-> r, r reads from w: causally overwritten.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])                  # w
        b.txn(1, [R("x", 1), W("x", 2), W("m", 1)])  # w' observed w
        b.txn(2, [R("m", 1)])                  # r causally after w'
        b.txn(2, [R("x", 1)])                  # ...but reads w's version
        result = check_transactional_causal_consistency(b.build())
        assert not result.satisfies
        assert any(a.axiom == "WriteCORead" for a in result.anomalies)

    def test_write_co_init_read(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1), W("m", 1)])
        b.txn(1, [R("m", 1)])        # causally after the writer
        b.txn(1, [R("x", None)])     # yet reads the initial state
        result = check_transactional_causal_consistency(b.build())
        assert not result.satisfies
        assert any(a.axiom == "WriteCOInitRead" for a in result.anomalies)

    def test_cyclic_information_flow_fails_tcc(self):
        h = build([R("y", 2), W("x", 1)], [R("x", 1), W("y", 2)])
        result = check_transactional_causal_consistency(h)
        assert not result.satisfies
        assert any(a.axiom == "CyclicCO" for a in result.anomalies)

    def test_axioms_checked_first(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], status=ABORTED)
        b.txn(1, [R("x", 1)])
        result = check_transactional_causal_consistency(b.build())
        assert not result.satisfies
        assert result.anomalies[0].axiom == "AbortedReads"

    def test_describe(self):
        result = check_transactional_causal_consistency(causality_history())
        assert "violates TCC" in result.describe()


class TestRaDetails:
    def test_mixed_initial_and_written_cells(self):
        # Reader sees w's x but the initial y although w wrote both.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1), W("y", 1)])
        b.txn(1, [R("x", 1), R("y", None)])
        result = check_read_atomicity(b.build())
        assert not result.satisfies

    def test_reading_newer_other_key_allowed(self):
        # Seeing a *newer* version of the second key is not fractured.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1), W("y", 1)])
        b.txn(1, [R("y", 1), W("y", 2)])
        b.txn(2, [R("x", 1), R("y", 2)])
        assert check_read_atomicity(b.build()).satisfies

    def test_single_key_reads_never_fractured(self):
        h = causality_history()
        assert check_read_atomicity(h).satisfies


class TestHierarchyProperties:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=150, deadline=None)
    def test_si_implies_tcc_implies_ra(self, seed):
        rng = random.Random(seed)
        h = random_history(rng, sessions=3, txns_per_session=2,
                           max_ops=4, keys=3, abort_prob=0.1)
        si = check_snapshot_isolation(h).satisfies_si
        tcc = check_transactional_causal_consistency(h).satisfies
        ra = check_read_atomicity(h).satisfies
        if si:
            assert tcc, "SI history failed TCC"
        if tcc:
            assert ra, "TCC history failed RA"

    @pytest.mark.parametrize("seed", range(4))
    def test_si_store_histories_pass_weak_levels(self, seed):
        params = WorkloadParams(sessions=5, txns_per_session=8,
                                ops_per_txn=5, keys=10,
                                distribution="uniform")
        run = generate_history(params, seed=seed)
        assert check_transactional_causal_consistency(run.history).satisfies
        assert check_read_atomicity(run.history).satisfies

    def test_no_fcw_store_is_still_causal(self):
        """Dropping first-committer-wins yields lost updates (SI broken)
        but keeps causal consistency — snapshots stay causally closed."""
        params = WorkloadParams(sessions=5, txns_per_session=10,
                                ops_per_txn=5, keys=5,
                                distribution="uniform")
        si_broken = tcc_broken = 0
        for seed in range(10):
            run = generate_history(
                params, seed=seed,
                faults=FaultConfig(no_first_committer_wins=True),
            )
            if not check_snapshot_isolation(run.history).satisfies_si:
                si_broken += 1
            if not check_transactional_causal_consistency(
                run.history
            ).satisfies:
                tcc_broken += 1
        assert si_broken > 0
        assert tcc_broken == 0

    def test_stale_snapshot_store_breaks_tcc(self):
        params = WorkloadParams(sessions=5, txns_per_session=10,
                                ops_per_txn=5, keys=6,
                                distribution="uniform")
        found = False
        for seed in range(15):
            run = generate_history(
                params, seed=seed,
                faults=FaultConfig(stale_snapshot_prob=0.5,
                                   stale_snapshot_depth=10),
            )
            if not check_transactional_causal_consistency(
                run.history
            ).satisfies:
                found = True
                break
        assert found
