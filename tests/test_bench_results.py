"""Tests for the machine-readable benchmark results writer
(repro.bench.results): schema shape, NaN handling, validation, and the
round trip every ``BENCH_*.json`` artifact goes through."""

import json
import math

import pytest

from repro.bench.harness import Measurement, Sweep
from repro.bench.results import (
    SCHEMA,
    BenchReport,
    load_report,
    validate_payload,
)


class TestBenchReport:
    def test_payload_shape(self):
        report = BenchReport("demo", config={"k": 1}, scale=0.5)
        report.add_point("fast", 10, seconds=0.25, peak_mb=3.5)
        report.count_verdict("si")
        report.note("speedup", 2.0)
        payload = report.payload()
        assert payload["schema"] == SCHEMA
        assert payload["bench"] == "demo"
        assert payload["scale"] == 0.5
        assert payload["points"][0]["series"] == "fast"
        assert payload["verdicts"] == {"si": 1}
        assert payload["derived"] == {"speedup": 2.0}
        validate_payload(payload)

    def test_scale_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert BenchReport("x").scale == 2.5
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert BenchReport("x").scale == 1.0

    def test_nan_seconds_become_null(self):
        report = BenchReport("demo")
        report.add_point("s", 1, seconds=float("nan"), timed_out=True,
                         error="TimeoutError")
        point = report.payload()["points"][0]
        assert point["seconds"] is None
        assert point["timed_out"] is True
        assert point["error"] == "TimeoutError"
        validate_payload(report.payload())

    def test_add_sweep_records_measurements_and_timeouts(self):
        sweep = Sweep("polysi", budget_seconds=10.0)
        sweep.points[1] = Measurement(0.5, 2.0, True)
        sweep.points[2] = Measurement(float("nan"), float("nan"), None,
                                      True, error="MemoryError")
        report = BenchReport("demo")
        report.add_sweep(sweep, axis="txns", xs=[1, 2])
        points = report.payload()["points"]
        assert [p["x"] for p in points] == [1, 2]
        assert points[0]["seconds"] == 0.5
        assert points[1]["timed_out"] and points[1]["error"] == "MemoryError"

    def test_write_and_load_round_trip(self, tmp_path):
        report = BenchReport("roundtrip", config={"n": 3})
        report.add_point("a", "x", seconds=1.0)
        path = report.write(str(tmp_path))
        assert path.endswith("BENCH_roundtrip.json")
        loaded = load_report(path)
        assert loaded == report.payload()

    def test_write_honours_output_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out"))
        report = BenchReport("env")
        report.add_point("a", 1, seconds=0.1)
        path = report.write()
        assert str(tmp_path / "out") in path
        load_report(path)


class TestValidation:
    def base(self):
        return {
            "schema": SCHEMA, "bench": "b", "scale": 1.0, "config": {},
            "points": [], "verdicts": {}, "derived": {},
        }

    def test_accepts_minimal(self):
        validate_payload(self.base())

    @pytest.mark.parametrize("mutate,fragment", [
        (lambda p: p.pop("points"), "missing"),
        (lambda p: p.update(schema="other/9"), "schema"),
        (lambda p: p.update(bench=""), "bench"),
        (lambda p: p.update(scale="big"), "scale"),
        (lambda p: p.update(points=[{"series": "s"}]), "point 0"),
        (lambda p: p.update(verdicts={"si": -1}), "verdicts"),
    ])
    def test_rejects_malformed(self, mutate, fragment):
        payload = self.base()
        mutate(payload)
        with pytest.raises(ValueError, match=fragment):
            validate_payload(payload)

    def test_rejects_point_without_timing_or_timeout(self):
        payload = self.base()
        payload["points"] = [{
            "series": "s", "axis": None, "x": 1, "seconds": None,
            "peak_mb": None, "timed_out": False, "error": None,
        }]
        with pytest.raises(ValueError, match="neither"):
            validate_payload(payload)

    def test_rejects_negative_or_nonfinite_seconds(self):
        for bad in (-1.0, float("inf")):
            payload = self.base()
            payload["points"] = [{
                "series": "s", "axis": None, "x": 1, "seconds": bad,
                "peak_mb": None, "timed_out": False, "error": None,
            }]
            with pytest.raises(ValueError):
                validate_payload(payload)

    def test_load_report_rejects_tampered_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        payload = self.base()
        payload["schema"] = "wrong"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_emitted_json_has_no_nan_tokens(self, tmp_path):
        report = BenchReport("nan")
        report.add_point("s", 1, seconds=float("nan"), timed_out=True)
        path = report.write(str(tmp_path))
        text = open(path).read()
        assert "NaN" not in text and "Infinity" not in text
        assert math.isnan(float("nan"))  # sanity on the helper itself
