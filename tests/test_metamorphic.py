"""Metamorphic properties of the checker.

Transformations that must never change the verdict: relabeling sessions,
bijectively renaming values or keys, appending independent transactions
on fresh keys.  These catch representation leaks (e.g. accidental
dependence on tid order) that example-based tests miss.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.checker import check_snapshot_isolation
from repro.core.history import History, Operation
from repro.workloads.random_histories import random_history


def _verdict(history: History) -> bool:
    return check_snapshot_isolation(history).satisfies_si


def _history(seed: int) -> History:
    rng = random.Random(seed)
    return random_history(
        rng, sessions=3, txns_per_session=2, max_ops=4, keys=3,
        abort_prob=0.1,
    )


def _rebuild(history: History, op_map, session_order=None) -> History:
    sessions = list(range(len(history.sessions)))
    if session_order is not None:
        sessions = session_order
    session_ops = []
    aborted = set()
    for new_s, old_s in enumerate(sessions):
        ops_list = []
        for i, txn in enumerate(history.sessions[old_s]):
            ops_list.append([op_map(op) for op in txn.ops])
            if not txn.committed:
                aborted.add((new_s, i))
        session_ops.append(ops_list)
    return History.from_ops(session_ops, aborted=aborted)


class TestSessionRelabeling:
    @given(st.integers(min_value=0, max_value=50_000),
           st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_shuffling_sessions_preserves_verdict(self, seed, shuffler):
        history = _history(seed)
        order = list(range(len(history.sessions)))
        shuffler.shuffle(order)
        relabeled = _rebuild(history, lambda op: op, session_order=order)
        assert _verdict(history) == _verdict(relabeled)


class TestValueRenaming:
    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=80, deadline=None)
    def test_bijective_value_renaming_preserves_verdict(self, seed):
        history = _history(seed)

        def rename(op: Operation) -> Operation:
            value = op.value
            if value is not None:
                value = f"v{value * 7 + 3}"
            return Operation(op.kind, op.key, value)

        assert _verdict(history) == _verdict(_rebuild(history, rename))

    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=80, deadline=None)
    def test_key_renaming_preserves_verdict(self, seed):
        history = _history(seed)

        def rename(op: Operation) -> Operation:
            return Operation(op.kind, f"renamed:{op.key}", op.value)

        assert _verdict(history) == _verdict(_rebuild(history, rename))


class TestIndependentPadding:
    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=60, deadline=None)
    def test_fresh_key_txns_preserve_verdict(self, seed):
        from repro.core.history import R, W

        history = _history(seed)
        session_ops = []
        aborted = set()
        for s, sess in enumerate(history.sessions):
            ops_list = []
            for i, txn in enumerate(sess):
                ops_list.append(list(txn.ops))
                if not txn.committed:
                    aborted.add((s, i))
            session_ops.append(ops_list)
        # A new session writing and reading keys nothing else touches.
        session_ops.append([
            [W("fresh:a", "pad1"), R("fresh:b", None)],
            [R("fresh:a", "pad1"), W("fresh:b", "pad2")],
        ])
        padded = History.from_ops(session_ops, aborted=aborted)
        assert _verdict(history) == _verdict(padded)


class TestCheckerDeterminism:
    @given(st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_repeated_checks_agree(self, seed):
        history = _history(seed)
        first = check_snapshot_isolation(history)
        second = check_snapshot_isolation(history)
        assert first.satisfies_si == second.satisfies_si
        assert first.decided_by == second.decided_by
