"""Unit tests for the non-cyclic axioms (repro.core.axioms)."""

from repro.core.axioms import (
    check_aborted_reads,
    check_axioms,
    check_intermediate_reads,
    check_internal_consistency,
)
from repro.core.history import ABORTED, History, HistoryBuilder, R, W


def _h(*sessions, aborted=()):
    return History.from_ops(list(sessions), aborted=aborted)


class TestInternalConsistency:
    def test_consistent_read_after_write(self):
        h = _h([[W("x", 1), R("x", 1)]])
        assert check_internal_consistency(h) == []

    def test_read_disagrees_with_own_write(self):
        h = _h([[W("x", 1), R("x", 2)]])
        violations = check_internal_consistency(h)
        assert len(violations) == 1
        assert violations[0].axiom == "Int"

    def test_read_disagrees_with_prior_read(self):
        h = _h([[R("x", 1), R("x", 2)]])
        assert len(check_internal_consistency(h)) == 1

    def test_read_write_read_chain(self):
        h = _h([[R("x", 1), W("x", 2), R("x", 2)]])
        assert check_internal_consistency(h) == []

    def test_checked_even_in_aborted_txns(self):
        h = _h([[W("x", 1), R("x", 9)]], aborted=[(0, 0)])
        assert len(check_internal_consistency(h)) == 1

    def test_multiple_keys_independent(self):
        h = _h([[W("x", 1), W("y", 2), R("x", 1), R("y", 2)]])
        assert check_internal_consistency(h) == []


class TestAbortedReads:
    def test_committed_reads_aborted_write(self):
        h = _h([[W("x", 1)]], [[R("x", 1)]], aborted=[(0, 0)])
        violations = check_aborted_reads(h)
        assert len(violations) == 1
        assert violations[0].axiom == "AbortedReads"
        assert violations[0].key == "x"

    def test_aborted_txn_reading_is_ignored(self):
        # Only *committed* readers matter.
        h = _h([[W("x", 1)]], [[R("x", 1)]], aborted=[(0, 0), (1, 0)])
        assert check_aborted_reads(h) == []

    def test_clean_history(self):
        h = _h([[W("x", 1)]], [[R("x", 1)]])
        assert check_aborted_reads(h) == []

    def test_initial_reads_not_flagged(self):
        h = _h([[R("x", None)]])
        assert check_aborted_reads(h) == []


class TestIntermediateReads:
    def test_reading_overwritten_value(self):
        h = _h([[W("x", 1), W("x", 2)]], [[R("x", 1)]])
        violations = check_intermediate_reads(h)
        assert len(violations) == 1
        assert violations[0].axiom == "IntermediateReads"

    def test_reading_final_value_ok(self):
        h = _h([[W("x", 1), W("x", 2)]], [[R("x", 2)]])
        assert check_intermediate_reads(h) == []

    def test_own_intermediate_read_ok(self):
        # Reading your own intermediate value is internal, not anomalous.
        h = _h([[W("x", 1), R("x", 1), W("x", 2)]])
        assert check_intermediate_reads(h) == []

    def test_aborted_writers_not_considered(self):
        h = _h([[W("x", 1), W("x", 2)]], [[R("x", 1)]], aborted=[(0, 0)])
        assert check_intermediate_reads(h) == []


class TestCheckAxioms:
    def test_aggregates_all(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1), W("x", 2)])          # intermediate source
        b.txn(1, [W("y", 7)], status=ABORTED)     # aborted source
        b.txn(2, [R("x", 1), R("y", 7), W("z", 1), R("z", 9)])
        violations = check_axioms(b.build())
        axioms = sorted(v.axiom for v in violations)
        assert axioms == ["AbortedReads", "Int", "IntermediateReads"]

    def test_clean_history_passes(self):
        h = _h([[W("x", 1)]], [[R("x", 1), W("y", 2)]], [[R("y", 2)]])
        assert check_axioms(h) == []

    def test_violation_repr_mentions_txn(self):
        h = _h([[W("x", 1), W("x", 2)]], [[R("x", 1)]])
        (violation,) = check_intermediate_reads(h)
        assert "T:(1,0)" in repr(violation)
