"""Documentation coverage: every public module, class, and function in the
package must carry a docstring.

This enforces the documentation deliverable mechanically — a new public
API without docs fails CI.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULES = set()


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in IGNORED_MODULES:
            continue
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


def test_all_modules_documented():
    undocumented = [
        module.__name__
        for module in _public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_all_public_classes_and_functions_documented():
    undocumented = []
    for module in _public_modules():
        for name, member in _public_members(module):
            if not (member.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == [], undocumented


def test_public_methods_documented():
    """Public methods of public classes need docstrings too (dunders and
    trivially-named accessors excluded)."""
    undocumented = []
    for module in _public_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or isinstance(
                        member, (property, staticmethod, classmethod))):
                    continue
                func = member
                if isinstance(member, property):
                    func = member.fget
                elif isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                if func is None or (func.__doc__ or "").strip():
                    continue
                # Short, self-describing accessors get a pass.
                try:
                    body_lines = len(inspect.getsource(func).splitlines())
                except (OSError, TypeError):  # pragma: no cover
                    body_lines = 0
                if body_lines <= 3:
                    continue
                undocumented.append(f"{module.__name__}.{cls_name}.{name}")
    assert undocumented == [], undocumented
