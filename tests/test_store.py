"""Segment-store internals (repro.store): atomic publication, the
append-only JSONL log, CRC/torn-tail recovery, advisory locking, and
checkpoint retention.

Resume *semantics* (verdict equivalence across snapshot/restore) live
in ``tests/test_resume.py``; this file pins the durability substrate
those semantics stand on (DESIGN.md S14).
"""

import json
import os

import pytest

from repro.core.history import R, W
from repro.store import (
    CHECKPOINT_SCHEMA,
    MANIFEST_SCHEMA,
    SegmentStore,
    StoreCorruption,
    StoreLocked,
    atomic_write_json,
    atomic_write_text,
    crc32_of,
    is_store_dir,
    store_meta,
)


def _events(n, *, sessions=3):
    """``n`` committed write events (unique keys — trivially SI)."""
    return [(i % sessions, (W(f"k{i}", i + 1),), "committed", None)
            for i in range(n)]


def _tmp_litter(directory):
    return [name for name in os.listdir(directory) if ".tmp" in name]


class TestAtomicWrites:
    def test_atomic_write_text_replaces_and_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(str(target), "first")
        atomic_write_text(str(target), "second")
        assert target.read_text() == "second"
        assert _tmp_litter(tmp_path) == []

    def test_serialization_failure_never_touches_the_target(self, tmp_path):
        """The regression the atomic writer exists for: a dump that
        raises mid-serialization must leave the previous file intact."""
        target = tmp_path / "out.json"
        atomic_write_json(str(target), {"ok": True})
        before = target.read_bytes()
        with pytest.raises(TypeError):
            atomic_write_json(str(target), {"bad": object()})
        assert target.read_bytes() == before
        assert _tmp_litter(tmp_path) == []

    def test_replace_failure_cleans_up_the_tmp_file(self, tmp_path,
                                                    monkeypatch):
        """A crash *between* write and publish (simulated: os.replace
        raises) leaves the old contents and no tmp litter behind."""
        import repro.store.atomic as atomic_mod

        target = tmp_path / "out.json"
        atomic_write_text(str(target), "old")

        def boom(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomic_mod.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(str(target), "new")
        monkeypatch.undo()
        assert target.read_text() == "old"
        assert _tmp_litter(tmp_path) == []

    def test_dump_history_is_atomic_against_bad_payloads(self, tmp_path):
        """``dump_history`` serializes before touching the file: an
        unserializable value aborts the dump without corrupting the
        previously-written history."""
        from repro.core.history import HistoryBuilder
        from repro.histories.codec import dump_history, load_history

        builder = HistoryBuilder()
        builder.txn(0, [W("x", 1)])
        good = builder.build()
        path = tmp_path / "history.json"
        dump_history(good, str(path))
        before = path.read_bytes()

        builder = HistoryBuilder()
        builder.txn(0, [W("x", object())])
        with pytest.raises((TypeError, ValueError)):
            dump_history(builder.build(), str(path))
        assert path.read_bytes() == before
        assert len(load_history(str(path))) == 1
        assert _tmp_litter(tmp_path) == []

    def test_bench_report_write_is_atomic(self, tmp_path, monkeypatch):
        """BenchReport.write publishes via the atomic writer: a failed
        publish keeps the previous BENCH_*.json readable."""
        import repro.store.atomic as atomic_mod
        from repro.bench.results import BenchReport, load_report

        report = BenchReport("atomictest", scale=1.0, config={})
        report.add_point("a", 1, seconds=0.5, axis="n")
        out = report.write(str(tmp_path))
        before = open(out, "rb").read()

        report.add_point("a", 2, seconds=0.6, axis="n")
        real_replace = atomic_mod.os.replace

        def boom(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomic_mod.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            report.write(str(tmp_path))
        monkeypatch.setattr(atomic_mod.os, "replace", real_replace)
        assert open(out, "rb").read() == before
        assert load_report(out)["bench"] == "atomictest"
        assert _tmp_litter(tmp_path) == []

    def test_crc32_of_matches_zlib(self, tmp_path):
        import zlib

        blob = b"x" * 200_000 + b"tail"
        path = tmp_path / "blob"
        path.write_bytes(blob)
        assert crc32_of(str(path)) == (zlib.crc32(blob) & 0xFFFFFFFF)


class TestSegmentLog:
    def test_append_iter_round_trip(self, tmp_path):
        events = [
            (0, (W("x", 1),), "committed", None),
            (1, (R("x", 1), W("y", 2)), "committed", (3, 9)),
            (2, (W("z", 3),), "aborted", None),
        ]
        with SegmentStore.create(str(tmp_path / "s")) as store:
            positions = [store.append_event(e) for e in events]
            assert positions == [0, 1, 2]
            assert store.total_events == 3
            got = list(store.iter_events())
        assert [pos for pos, _ in got] == [0, 1, 2]
        assert [e[0] for _, e in got] == [0, 1, 2]
        assert got[1][1][3] == (3, 9)

    def test_segments_roll_and_survive_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        with SegmentStore.create(path, segment_max_events=4) as store:
            for e in _events(10):
                store.append_event(e)
            assert store.segments == 3  # two sealed + the active one
        manifest = json.loads((tmp_path / "s" / "MANIFEST.json").read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert len(manifest["segments"]) == 2
        assert all("crc32" in seg for seg in manifest["segments"])
        with SegmentStore.open(path) as store:
            assert store.total_events == 10
            assert [e[1][0].key for _, e in store.iter_events()] == [
                f"k{i}" for i in range(10)
            ]
            assert list(store.iter_events(7))[0][0] == 7

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        with SegmentStore.create(path) as store:
            for e in _events(5):
                store.append_event(e)
        active = os.path.join(path, "seg-00000000.jsonl")
        with open(active, "a", encoding="utf-8") as handle:
            handle.write('{"session": 0, "ops": [["w", "torn"')  # no newline
        with SegmentStore.open(path) as store:
            assert store.total_events == 5
            assert len(list(store.iter_events())) == 5
            # The torn bytes are gone: appending again keeps the log valid.
            store.append_event((0, (W("k9", 99),), "committed", None))
            assert store.total_events == 6

    def test_readonly_open_refuses_to_truncate_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "s")
        with SegmentStore.create(path) as store:
            store.append_event((0, (W("x", 1),), "committed", None))
        active = os.path.join(path, "seg-00000000.jsonl")
        with open(active, "a", encoding="utf-8") as handle:
            handle.write("{torn")
        with pytest.raises(StoreCorruption):
            SegmentStore(path, readonly=True)

    def test_sealed_segment_corruption_is_detected(self, tmp_path):
        path = str(tmp_path / "s")
        with SegmentStore.create(path, segment_max_events=2) as store:
            for e in _events(4):
                store.append_event(e)
        seg = os.path.join(path, "seg-00000000.jsonl")
        blob = bytearray(open(seg, "rb").read())
        blob[5] ^= 0xFF
        open(seg, "wb").write(bytes(blob))
        with pytest.raises(StoreCorruption, match="CRC"):
            SegmentStore.open(path)

    def test_invalid_event_is_rejected_and_not_journaled(self, tmp_path):
        with SegmentStore.create(str(tmp_path / "s")) as store:
            with pytest.raises(ValueError):
                store.append_event((0, (("bogus-op", "x"),), "committed",
                                    None))
            assert store.total_events == 0
            assert list(store.iter_events()) == []

    def test_locking_is_exclusive_per_process_handle(self, tmp_path):
        path = str(tmp_path / "s")
        store = SegmentStore.create(path)
        try:
            with pytest.raises(StoreLocked):
                SegmentStore.open(path)
        finally:
            store.close()
        SegmentStore.open(path).close()  # released on close

    def test_meta_round_trip_and_is_store_dir(self, tmp_path):
        path = str(tmp_path / "s")
        with SegmentStore.create(path, meta={"tenant": "t0"}) as store:
            store.update_meta(sessions=[0, 1, 2])
        assert is_store_dir(path)
        assert not is_store_dir(str(tmp_path))
        meta = store_meta(path)
        assert meta == {"tenant": "t0", "sessions": [0, 1, 2]}
        assert store_meta(str(tmp_path)) == {}


class TestCheckpoints:
    def _store_with_checkpoints(self, tmp_path, counts,
                                keep_checkpoints=2):
        store = SegmentStore.create(str(tmp_path / "s"),
                                    keep_checkpoints=keep_checkpoints)
        for e in _events(max(counts)):
            store.append_event(e)
        for count in counts:
            store.save_checkpoint(count, {"v": 1, "at": count})
        return store

    def test_retention_keeps_only_the_newest(self, tmp_path):
        with self._store_with_checkpoints(tmp_path, [5, 10, 15]) as store:
            assert store.checkpoints() == [10, 15]
            events, state = store.latest_checkpoint()
        assert events == 15 and state["at"] == 15

    def test_torn_checkpoint_falls_back_to_the_older_one(self, tmp_path):
        with self._store_with_checkpoints(tmp_path, [5, 10]) as store:
            newest = os.path.join(str(tmp_path / "s"), "checkpoints",
                                  "ckpt-0000000010.json")
            open(newest, "w").write('{"torn')
            events, state = store.latest_checkpoint()
            assert events == 5 and state["at"] == 5

    def test_checkpoint_ahead_of_the_log_is_skipped(self, tmp_path):
        """A checkpoint claiming more events than the durable log holds
        (crash between worker checkpoint and journal append) cannot be
        the log's future and must be ignored."""
        with self._store_with_checkpoints(tmp_path, [5]) as store:
            ckpt_dir = os.path.join(str(tmp_path / "s"), "checkpoints")
            future = {"schema": CHECKPOINT_SCHEMA, "events": 999,
                      "checker": {"v": 1}}
            with open(os.path.join(ckpt_dir, "ckpt-0000000999.json"),
                      "w", encoding="utf-8") as handle:
                json.dump(future, handle)
            events, _state = store.latest_checkpoint()
            assert events == 5

    def test_checkpoint_payload_carries_extra(self, tmp_path):
        with SegmentStore.create(str(tmp_path / "s")) as store:
            store.append_event((0, (W("x", 1),), "committed", None))
            store.save_checkpoint(1, {"v": 1}, extra={"committed_seen": 1})
            payload = store.latest_checkpoint_payload()
        assert payload["schema"] == CHECKPOINT_SCHEMA
        assert payload["extra"] == {"committed_seen": 1}
