"""Tests for the CDCL SAT core, including hypothesis cross-checks."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.cdcl import CDCLSolver, _luby


def brute_force_sat(num_vars, clauses):
    """Reference SAT decision by enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in c) for c in clauses):
            return True
    return False


def make_solver(num_vars, clauses):
    solver = CDCLSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(list(clause))
    return solver


class TestBasics:
    def test_empty_formula_sat(self):
        assert CDCLSolver().solve()

    def test_single_unit(self):
        s = make_solver(1, [[1]])
        assert s.solve()
        assert s.model_value(1)

    def test_contradictory_units(self):
        s = make_solver(1, [[1], [-1]])
        assert not s.solve()

    def test_tautology_dropped(self):
        s = make_solver(2, [[1, -1]])
        assert s.solve()

    def test_duplicate_literals_deduped(self):
        s = make_solver(1, [[1, 1, 1]])
        assert s.solve()
        assert s.model_value(1)

    def test_implication_chain(self):
        n = 50
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)]
        s = make_solver(n, clauses)
        assert s.solve()
        assert all(s.model_value(v) for v in range(1, n + 1))

    def test_simple_unsat_triangle(self):
        # (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b)
        s = make_solver(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
        assert not s.solve()

    def test_xor_chain_sat(self):
        # x1 xor x2 = 1, x2 xor x3 = 1 encoded in CNF.
        clauses = [[1, 2], [-1, -2], [2, 3], [-2, -3]]
        s = make_solver(3, clauses)
        assert s.solve()
        assert s.model_value(1) != s.model_value(2)
        assert s.model_value(2) != s.model_value(3)

    def test_stats_are_counted(self):
        s = make_solver(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
        s.solve()
        assert s.stats.conflicts >= 1

    def test_add_clause_after_false_unit(self):
        s = CDCLSolver()
        s.ensure_vars(1)
        assert s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve()


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """PHP(holes+1, holes): unsatisfiable by the pigeonhole principle."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_pigeonhole_unsat(self, holes):
        n, clauses = self._pigeonhole(holes)
        assert not make_solver(n, clauses).solve()

    def test_exact_fit_sat(self):
        # holes pigeons into holes holes is satisfiable.
        holes = 3
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        clauses = [[var(p, h) for h in range(holes)] for p in range(holes)]
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    clauses.append([-var(p1, h), -var(p2, h)])
        assert make_solver(holes * holes, clauses).solve()


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(cnf_instances())
    @settings(max_examples=300, deadline=None)
    def test_decision_matches_enumeration(self, instance):
        num_vars, clauses = instance
        solver = make_solver(num_vars, clauses)
        got = solver.solve()
        assert got == brute_force_sat(num_vars, clauses)

    @given(cnf_instances())
    @settings(max_examples=200, deadline=None)
    def test_models_satisfy_all_clauses(self, instance):
        num_vars, clauses = instance
        solver = make_solver(num_vars, clauses)
        if solver.solve():
            for clause in clauses:
                assert any(
                    (lit > 0) == solver.model_value(abs(lit)) for lit in clause
                )
