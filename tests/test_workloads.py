"""Tests for workload generation: parametric, key distributions, benchmark
mixes, and execution through the client recorder."""

import random
from collections import Counter

import pytest

from repro.core.history import INITIAL_VALUE
from repro.storage.client import run_workload
from repro.storage.database import MVCCDatabase
from repro.workloads.benchmarks import (
    ctwitter_workload,
    rubis_workload,
    tpcc_workload,
)
from repro.workloads.generator import (
    WorkloadParams,
    generate_history,
    generate_workload,
)
from repro.workloads.keydist import (
    HotspotKeys,
    UniformKeys,
    ZipfianKeys,
    make_distribution,
)


class TestKeyDistributions:
    def test_uniform_range(self, rng):
        dist = UniformKeys(10)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert min(samples) >= 0 and max(samples) < 10
        assert len(set(samples)) == 10

    def test_zipfian_skew(self, rng):
        dist = ZipfianKeys(1000, theta=0.99)
        samples = Counter(dist.sample(rng) for _ in range(5000))
        top = sum(count for key, count in samples.items() if key < 10)
        assert top > 0.3 * 5000  # the hottest 1% draws >30% of accesses

    def test_zipfian_large_keyspace(self, rng):
        dist = ZipfianKeys(1_000_000_000)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(0 <= s < 1_000_000_000 for s in samples)

    def test_zipfian_single_key(self, rng):
        """Regression: ``num_keys == 1`` drove ``_eta`` negative through
        ``(2/num_keys)**(1-theta) > 1`` (and ``_zeta2 == _zetan`` divides
        by zero); the degenerate space must just return its only key."""
        dist = ZipfianKeys(1)
        assert all(dist.sample(rng) == 0 for _ in range(100))

    def test_zipfian_two_keys_boundary(self, rng):
        # The smallest non-degenerate space: constants well-defined,
        # samples in range, rank 0 hotter than rank 1.
        dist = ZipfianKeys(2)
        assert dist._eta >= 0
        samples = Counter(dist.sample(rng) for _ in range(2000))
        assert set(samples) <= {0, 1}
        assert samples[0] > samples[1]

    def test_zipfian_single_key_through_generator(self):
        params = WorkloadParams(
            sessions=2, txns_per_session=4, ops_per_txn=3, keys=1,
            distribution="zipfian",
        )
        history = generate_history(params, seed=1).history
        keys = {op.key for txn in history.transactions for op in txn.ops}
        assert keys == {"k0"}

    def test_hotspot_80_20(self, rng):
        dist = HotspotKeys(100)
        samples = [dist.sample(rng) for _ in range(5000)]
        hot = sum(1 for s in samples if s < dist.hot_keys)
        assert 0.7 * 5000 < hot < 0.9 * 5000

    def test_factory(self):
        assert isinstance(make_distribution("uniform", 5), UniformKeys)
        assert isinstance(make_distribution("zipfian", 5), ZipfianKeys)
        assert isinstance(make_distribution("hotspot", 5), HotspotKeys)
        with pytest.raises(ValueError):
            make_distribution("normal", 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.5)


class TestParametricGenerator:
    def test_shape_matches_params(self):
        params = WorkloadParams(
            sessions=3, txns_per_session=4, ops_per_txn=5, keys=10
        )
        spec = generate_workload(params, seed=1)
        assert len(spec) == 3
        assert all(len(s) == 4 for s in spec)
        assert all(len(t) == 5 for s in spec for t in s)

    def test_unique_written_values(self):
        params = WorkloadParams(
            sessions=4, txns_per_session=5, ops_per_txn=6, keys=5,
            read_proportion=0.3,
        )
        spec = generate_workload(params, seed=2)
        written = [op[2] for s in spec for t in s for op in t if op[0] == "w"]
        assert len(written) == len(set(written))

    def test_read_proportion_respected(self):
        params = WorkloadParams(
            sessions=2, txns_per_session=50, ops_per_txn=10, keys=100,
            read_proportion=0.9,
        )
        spec = generate_workload(params, seed=3)
        ops = [op for s in spec for t in s for op in t]
        reads = sum(1 for op in ops if op[0] == "r")
        assert reads / len(ops) > 0.8

    def test_deterministic_by_seed(self):
        params = WorkloadParams(sessions=2, txns_per_session=3, ops_per_txn=4)
        assert generate_workload(params, seed=7) == generate_workload(
            params, seed=7
        )
        assert generate_workload(params, seed=7) != generate_workload(
            params, seed=8
        )

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(sessions=0)
        with pytest.raises(ValueError):
            WorkloadParams(read_proportion=1.5)

    def test_totals(self):
        params = WorkloadParams(sessions=2, txns_per_session=3, ops_per_txn=4)
        assert params.total_txns == 6
        assert params.total_ops == 24


class TestClientRecorder:
    def test_history_covers_all_txns(self):
        params = WorkloadParams(
            sessions=3, txns_per_session=5, ops_per_txn=4, keys=10
        )
        run = generate_history(params, seed=4)
        assert len(run.history) == run.committed + run.aborted == 15

    def test_drop_aborted_option(self):
        spec = [[[("w", "x", 1)]], [[("w", "x", 2)]]]
        db = MVCCDatabase(seed=0)
        # Interleave so one must abort under first-committer-wins.
        run = run_workload(db, spec, seed=1, record_aborted=False)
        assert all(t.committed for t in run.history.transactions)

    def test_recorded_values_match_database(self):
        spec = [
            [[("w", "x", 1)], [("r", "x")]],
        ]
        db = MVCCDatabase(seed=0)
        run = run_workload(db, spec, seed=0)
        read_op = run.history.sessions[0][1].ops[0]
        assert read_op.value == 1

    def test_initial_reads_recorded_as_none(self):
        spec = [[[("r", "nope")]]]
        db = MVCCDatabase(seed=0)
        run = run_workload(db, spec, seed=0)
        assert run.history.sessions[0][0].ops[0].value is INITIAL_VALUE


class TestBenchmarkMixes:
    def test_rubis_shape(self):
        spec = rubis_workload(sessions=4, total_txns=40, seed=1)
        txns = [t for s in spec for t in s]
        assert len(txns) == 40
        keys = {op[1] for t in txns for op in t}
        assert any(k.startswith("item:") for k in keys)

    def test_tpcc_rmw_pattern(self):
        """Every TPC-C write to warehouse/district/customer/stock keys is
        preceded by a read of the same key (the property that lets pruning
        resolve all of TPC-C's constraints, Table 3)."""
        spec = tpcc_workload(sessions=4, total_txns=60, seed=2)
        for session in spec:
            for txn in session:
                seen_reads = set()
                for op in txn:
                    if op[0] == "r":
                        seen_reads.add(op[1])
                    elif not op[1].startswith("o:"):
                        assert op[1] in seen_reads, txn

    def test_ctwitter_shape(self):
        spec = ctwitter_workload(sessions=4, total_txns=40, seed=3)
        txns = [t for s in spec for t in s]
        assert len(txns) == 40

    def test_unique_values_across_mixes(self):
        for factory in (rubis_workload, tpcc_workload, ctwitter_workload):
            spec = factory(sessions=3, total_txns=30, seed=4)
            written = [
                op[2] for s in spec for t in s for op in t if op[0] == "w"
            ]
            assert len(written) == len(set(written)), factory.__name__

    def test_benchmarks_run_clean_on_si_store(self):
        from repro import check_snapshot_isolation

        for factory in (rubis_workload, tpcc_workload, ctwitter_workload):
            spec = factory(sessions=4, total_txns=30, seed=5)
            db = MVCCDatabase(seed=5)
            run = run_workload(db, spec, seed=5)
            assert check_snapshot_isolation(run.history).satisfies_si, (
                factory.__name__
            )
