"""Shared fixtures for the test suite.

History constructors live in :mod:`_helpers` (importable without the
conftest shadowing pitfalls described there); this file carries only
pytest fixtures.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
