"""Resume equivalence: snapshot/restore never changes a verdict.

The soundness contract of DESIGN.md S14, pinned as properties:

- **Snapshot/restore identity** — an :class:`OnlineChecker` restored
  from ``snapshot()`` at *any* transaction boundary and fed the rest of
  the stream reaches the same verdict, the same anomaly set, and the
  same known-edge count as the uninterrupted checker — on random
  histories, on the known-anomaly corpus, under windowed eviction, and
  across closure backends (a python snapshot restored onto the numpy
  backend and vice versa).
- **Journal + checkpoint recovery** — a :class:`PersistentCheck`
  interrupted at any point and reopened on the same state directory
  converges to the uninterrupted verdict, replaying only the log tail
  past the newest checkpoint.
- A latched violation is never checkpointed, and the journaled log
  alone re-derives the violation (``run_persistent_check(path)``).
"""

import random

import pytest

import repro
from repro.api import CheckerError
from repro.histories.codec import history_to_events
from repro.online import OnlineChecker, WindowPolicy
from repro.store import PersistentCheck, run_persistent_check
from repro.utils.closure import available_closure_backends
from repro.workloads import WorkloadParams, generate_history
from repro.workloads.corpus import known_anomaly_corpus
from repro.workloads.random_histories import random_history

from _helpers import lost_update_history


def _events_for(history):
    return history_to_events(history)


def _drive(checker, events):
    """Feed all events; returns the final result (violations latch, so
    feeding past one is harmless and mirrors the service's behavior)."""
    result = checker.result()
    for event in events:
        result = checker.add(event[0], event[1], status=event[2])
    return checker.finish()


def _fingerprint(checker, result):
    anomalies = sorted(type(a).__name__ for a in result.anomalies)
    return {
        "verdict": result.satisfies_si,
        "decided_by": result.decided_by if not result.satisfies_si else None,
        "anomalies": anomalies,
        "accepted": result.stats.get("accepted"),
        "known_edges": len(checker._known_edges),
    }


def _resumed_fingerprint(events, split, **checker_kwargs):
    """Run ``events`` with a snapshot/restore break after ``split``."""
    first = OnlineChecker(**checker_kwargs)
    for event in events[:split]:
        result = first.add(event[0], event[1], status=event[2])
        if not result.satisfies_si:
            return None  # violated before the split: nothing to restore
    state = first.snapshot()
    second = OnlineChecker.restore(state)
    result = _drive(second, events[split:])
    return _fingerprint(second, result)


def _random_events(seed, *, sessions=4, txns=5, abort_prob=0.1):
    """Unconstrained fuzz events — roughly half violate SI."""
    history = random_history(
        random.Random(seed), sessions=sessions, txns_per_session=txns,
        max_ops=4, keys=6, read_initial_prob=0.2, abort_prob=abort_prob,
    )
    return _events_for(history)


def _valid_events(seed, *, sessions=3, txns=6):
    """Events from an executed snapshot-isolation workload — satisfiable."""
    history = generate_history(
        WorkloadParams(sessions=sessions, txns_per_session=txns,
                       ops_per_txn=4, keys=8, read_proportion=0.5),
        seed=seed, isolation="snapshot",
    ).history
    return _events_for(history)


class TestSnapshotRestoreEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_histories_every_third_boundary(self, seed):
        events = _random_events(seed)
        baseline = OnlineChecker()
        fingerprint = _fingerprint(baseline, _drive(baseline, events))
        for split in range(1, len(events), 3):
            resumed = _resumed_fingerprint(events, split)
            if resumed is None:
                break
            assert resumed == fingerprint, f"seed={seed} split={split}"

    def test_anomaly_corpus_resumes_to_the_same_violation(self):
        for index, (name, history) in enumerate(
                known_anomaly_corpus(18, seed=3)):
            events = _events_for(history)
            baseline = OnlineChecker()
            fingerprint = _fingerprint(baseline, _drive(baseline, events))
            assert fingerprint["verdict"] is False, name
            for split in (1, len(events) // 2, len(events) - 1):
                if split < 1:
                    continue
                resumed = _resumed_fingerprint(events, split)
                if resumed is None:
                    continue  # the violation latched before this split
                assert resumed == fingerprint, f"#{index} {name} @{split}"

    def test_windowed_checker_resumes_identically(self):
        events = _random_events(11, sessions=4, txns=8)
        kwargs = dict(window=WindowPolicy(max_live=8, gc_every=4),
                      sessions=range(4))
        baseline = OnlineChecker(**kwargs)
        fingerprint = _fingerprint(baseline, _drive(baseline, events))
        for split in range(2, len(events), 5):
            resumed = _resumed_fingerprint(events, split, **kwargs)
            if resumed is None:
                break
            assert resumed == fingerprint, f"split={split}"

    @pytest.mark.skipif("numpy" not in available_closure_backends(),
                        reason="numpy backend unavailable")
    @pytest.mark.parametrize("src,dst", [("python", "numpy"),
                                         ("numpy", "python")])
    def test_snapshot_restores_across_closure_backends(self, src, dst):
        """A checkpoint written under one closure backend restores onto
        the other: int rows are the interchange format."""
        events = _events_for(lost_update_history())
        split = max(1, len(events) // 2)
        first = OnlineChecker(closure_backend=src)
        for event in events[:split]:
            first.add(event[0], event[1], status=event[2])
        state = first.snapshot()
        state["config"]["closure_backend"] = dst
        second = OnlineChecker.restore(state)
        result = _drive(second, events[split:])
        baseline = OnlineChecker(closure_backend=dst)
        expected = _drive(baseline, events)
        assert result.satisfies_si == expected.satisfies_si is False
        assert (sorted(type(a).__name__ for a in result.anomalies)
                == sorted(type(a).__name__ for a in expected.anomalies))

    def test_snapshot_refuses_a_latched_violation(self):
        checker = OnlineChecker()
        result = _drive(checker, _events_for(lost_update_history()))
        assert result.satisfies_si is False
        with pytest.raises(ValueError):
            checker.snapshot()


class TestPersistentCheck:
    def test_interrupted_run_converges_to_uninterrupted_verdict(
            self, tmp_path):
        events = _valid_events(21)
        baseline = OnlineChecker()
        expected = _fingerprint(baseline, _drive(baseline, events))

        split = len(events) // 2
        with PersistentCheck(str(tmp_path / "s"),
                             checkpoint_every=4) as first:
            first.feed_events(events[:split])
        # "Crash": the first driver goes away without finish();
        # reopening recovers from the newest checkpoint + tail replay.
        with PersistentCheck(str(tmp_path / "s"),
                             checkpoint_every=4) as second:
            assert second.recovered_events == split
            assert second.resumed_from > 0  # a checkpoint was used
            assert second.replayed == split - second.resumed_from
            second.feed_events(events[split:])
            result = second.finish()
            got = _fingerprint(second.checker, result)
        assert got == expected
        persistence = result.stats["persistence"]
        assert persistence["journaled_events"] == len(events)

    def test_resume_false_replays_the_whole_log(self, tmp_path):
        events = _valid_events(22)
        with PersistentCheck(str(tmp_path / "s"),
                             checkpoint_every=3) as first:
            first.feed_events(events)
            first.finish()
        with PersistentCheck(str(tmp_path / "s"), resume=False) as again:
            assert again.resumed_from == 0
            assert again.replayed == len(events)
            assert again.finish().satisfies_si

    def test_checkpoint_zero_disables_periodic_checkpoints(self, tmp_path):
        events = _valid_events(23)
        with PersistentCheck(str(tmp_path / "s"),
                             checkpoint_every=0) as check:
            check.feed_events(events)
            assert check.store.checkpoints() == []
            check.finish()  # the final checkpoint still lands
            assert check.store.checkpoints() == [len(events)]

    def test_violation_is_never_checkpointed_but_stays_journaled(
            self, tmp_path):
        events = _events_for(lost_update_history())
        with PersistentCheck(str(tmp_path / "s"),
                             checkpoint_every=1) as check:
            result = check.feed_events(events)
            assert result.satisfies_si is False
            check.finish()
            journaled = check.store.total_events
            checkpoints = check.store.checkpoints()
        assert journaled == len(events)
        # Only checkpoints from before the latch may exist; the offline
        # recheck of the journal alone re-derives the violation.
        result = run_persistent_check(str(tmp_path / "s"))
        assert result.satisfies_si is False
        for count in checkpoints:
            assert count < journaled

    def test_offline_recheck_of_a_clean_journal(self, tmp_path):
        events = _valid_events(24)
        with PersistentCheck(str(tmp_path / "s")) as check:
            check.feed_events(events)
            check.finish()
        result = run_persistent_check(str(tmp_path / "s"))
        assert result.satisfies_si is True
        assert result.stats["persistence"]["resumed_from"] == len(events)
        assert result.stats["persistence"]["replayed"] == 0


class TestFacadeAndCli:
    def test_facade_state_dir_round_trip(self, tmp_path):
        events = _valid_events(31)
        from repro.histories.codec import history_from_events

        history = history_from_events(events)
        state = str(tmp_path / "s")
        report = repro.check(history, mode="online", state_dir=state,
                             checkpoint_every=8)
        assert report.ok
        persistence = report.stats["persistence"]
        assert persistence["journaled_events"] == len(events)
        # Subject None: the journaled log itself is the history.
        again = repro.check(None, mode="online", state_dir=state)
        assert again.ok
        assert again.stats["persistence"]["resumed_from"] == len(events)

    def test_state_dir_is_online_only(self, tmp_path):
        with pytest.raises(CheckerError):
            repro.check(lost_update_history(), mode="parallel",
                        state_dir=str(tmp_path / "s"))

    def test_negative_checkpoint_every_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            repro.check(lost_update_history(), mode="online",
                        state_dir=str(tmp_path / "s"), checkpoint_every=-1)

    def test_cli_check_accepts_a_state_directory(self, tmp_path, capsys):
        from repro.cli import main

        events = _events_for(lost_update_history())
        state = str(tmp_path / "s")
        with PersistentCheck(state) as check:
            check.feed_events(events)
            check.finish()
        assert main(["check", state]) == 1
        out = capsys.readouterr().out
        assert "state dir" in out

    def test_cli_watch_state_dir_resumes_without_rejournaling(
            self, tmp_path, capsys):
        from repro.cli import main
        from repro.store import SegmentStore

        state = str(tmp_path / "s")
        argv = ["watch", "--sessions", "3", "--txns", "4", "--seed", "5",
                "--report-every", "0", "--state-dir", state,
                "--checkpoint-every", "6"]
        assert main(argv) == 0
        with SegmentStore(state, readonly=True) as store:
            journaled = store.total_events
        assert journaled > 0
        capsys.readouterr()
        assert main(argv) == 0  # same flags + seed: resumes, no re-append
        out = capsys.readouterr().out
        assert f"resumed from {state}" in out
        with SegmentStore(state, readonly=True) as store:
            assert store.total_events == journaled
