"""Trace soundness across the whole registry: every registered
engine x isolation x mode combination must attach a well-formed
``repro-trace/1`` payload to its ``Report``, with the combo's mandatory
stages present and exactly one root span.

The combos under test are *derived from the registry* (the same drift
guard as ``test_api_differential.py``): registering a new engine or
mode automatically enrolls it here, and a stage span renamed or dropped
in the polysi pipeline fails the mandatory-stage assertion instead of
silently shrinking the trace.
"""

import pytest

from repro.api import check, get_engine, list_engines
from repro.core.history import HistoryBuilder, R, W
from repro.extensions.segmented import run_segmented_workload
from repro.listappend import A, L, ListHistoryBuilder
from repro.obs import span_tree, validate_trace
from repro.storage.database import MVCCDatabase
from repro.workloads.generator import WorkloadParams, generate_workload

from _helpers import serializable_history


def all_combos():
    """Every registered (engine, isolation, mode), sorted for stable
    parametrize ids."""
    combos = []
    for spec in list_engines():
        for isolation, mode in spec.combos:
            combos.append((spec.name, isolation, mode))
    return sorted(combos)


#: Stage names that must appear in the trace of each polysi SI mode.
#: Other combos (oracle-style engines, the non-SI levels) guarantee
#: only the façade's root "check" span.
MANDATORY_STAGES = {
    ("polysi", "si", "batch"): {"axioms", "construct", "prune"},
    ("timestamp", "si", "batch"): {"axioms", "validate"},
    ("polysi", "si", "online"): {"event"},
    ("polysi", "si", "parallel"): {"decompose", "pool", "shard", "prune"},
    ("polysi", "si", "segmented"): {"segment"},
}


def two_component_history():
    """Two transactions-disjoint key groups, each with a pair of
    unordered writers (a real constraint), so the parallel engine plans
    two *constrained* component shards and dispatches them through the
    pool — pure components would be checked statically in the parent."""
    b = HistoryBuilder()
    for group, key in enumerate(("a", "b")):
        base = group * 3
        b.txn(base, [W(key, f"{key}1")])
        b.txn(base + 1, [W(key, f"{key}2")])
        b.txn(base + 2, [R(key, f"{key}1")])
    return b.build()


def _segmented_run():
    spec = generate_workload(
        WorkloadParams(sessions=3, txns_per_session=6, ops_per_txn=4,
                       keys=8),
        seed=1,
    )
    return run_segmented_workload(MVCCDatabase(seed=1), spec,
                                  snapshot_every=6, seed=1)


def _list_history():
    b = ListHistoryBuilder()
    b.txn(0, [A("x", 1)])
    b.txn(1, [A("x", 2), L("x", [1, 2])])
    return b.build()


def subject_for(engine, isolation, mode):
    kind = get_engine(engine).input_kind(isolation, mode)
    if kind == "segmented_run":
        return _segmented_run()
    if kind == "list_history":
        return _list_history()
    if kind == "timestamped_history":
        from repro.timestamp import stamp_serial
        return stamp_serial(serializable_history())
    if mode == "parallel":
        return two_component_history()
    return serializable_history()


def options_for(mode):
    # oversubscribe forces the real process pool even on 1-CPU runners,
    # so the parallel trace exercises worker-span adoption.
    if mode == "parallel":
        return {"workers": 2, "oversubscribe": True}
    if mode == "segmented":
        return {}
    return {}


@pytest.mark.parametrize("engine,isolation,mode", all_combos())
def test_every_registered_combo_emits_a_sound_trace(engine, isolation, mode):
    report = check(subject_for(engine, isolation, mode), isolation, mode,
                   engine, **options_for(mode))
    assert report.ok, (engine, isolation, mode)

    payload = report.stats["trace"]
    validate_trace(payload)  # raises on any malformation (incl. orphans)
    assert payload["mode"] == mode
    assert payload["engine"] == engine
    assert payload["dropped"] == 0

    roots = span_tree(payload).get(None, [])
    assert [r["name"] for r in roots] == ["check"], (
        "every span must descend from the façade's single check span"
    )

    names = {span["name"] for span in payload["spans"]}
    mandatory = MANDATORY_STAGES.get((engine, isolation, mode), set())
    assert mandatory <= names, (
        f"{engine}/{isolation}/{mode}: missing stages "
        f"{sorted(mandatory - names)} in {sorted(names)}"
    )

    for key in ("counters", "gauges", "histograms"):
        assert isinstance(payload["metrics"].get(key), dict)


def test_parallel_trace_attributes_worker_spans():
    """Pooled shards re-parent their spans under the pool span with a
    worker id on every adopted span."""
    report = check(two_component_history(), "si", "parallel", "polysi",
                   workers=2, oversubscribe=True)
    payload = validate_trace(report.stats["trace"])
    by_id = {s["id"]: s for s in payload["spans"]}
    pool = [s for s in payload["spans"] if s["name"] == "pool"]
    shards = [s for s in payload["spans"] if s["name"] == "shard"]
    assert len(pool) == 1
    assert len(shards) >= 2
    for shard in shards:
        assert shard["parent"] == pool[0]["id"]
        assert shard["worker"] is not None
    # shard children (the per-shard pipeline) carry the same attribution
    adopted_children = [s for s in payload["spans"]
                        if s["parent"] in {sh["id"] for sh in shards}]
    assert adopted_children, "per-shard stage spans must ride along"
    for child in adopted_children:
        assert child["worker"] == by_id[child["parent"]]["worker"]


def test_pooled_segmented_trace_attributes_segment_spans():
    report = check(_segmented_run(), "si", "segmented", "polysi",
                   workers=2, oversubscribe=True)
    payload = validate_trace(report.stats["trace"])
    segments = [s for s in payload["spans"] if s["name"] == "segment"]
    assert segments, "segmented checking must emit per-segment spans"
    assert all(s["worker"] is not None for s in segments)


def test_batch_trace_reports_closure_counters():
    """The per-backend closure counters surface in the payload metrics
    under the resolved backend's name."""
    report = check(serializable_history())
    payload = report.stats["trace"]
    backend = report.stats["closure_backend"]
    counters = payload["metrics"]["counters"]
    prefixed = {name for name in counters
                if name.startswith(f"closure.{backend}.")}
    assert prefixed, sorted(counters)


def test_trace_false_omits_the_payload():
    report = check(serializable_history(), trace=False)
    assert report.ok
    assert "trace" not in report.stats
