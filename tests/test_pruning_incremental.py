"""Differential parity: incremental fixpoint pruning vs the
recompute-per-iteration reference path (repro.core.pruning).

The incremental fixpoint (``prune_constraints`` + ``PruneState``) must be
*indistinguishable* from ``prune_constraints_recompute`` — identical
verdicts, identical ``PruneResult`` counters (iterations / pruned /
constraints_after / unknown_deps_after), identical resulting known-edge
sets, and equally valid witness cycles — across the workload corpus:
generated zipfian workloads, the known-anomaly corpus, deep resolution
cascades, and random small histories.
"""

import random

import pytest

from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import RW, build_polygraph
from repro.core.pruning import (
    PruneState,
    prune_constraints,
    prune_constraints_recompute,
)
from repro.utils.closure import ClosureBackend
from repro.utils.reachability import transitive_closure_bits
from repro.workloads.corpus import ANOMALY_TEMPLATES, make_anomaly
from repro.workloads.generator import WorkloadParams, generate_history
from repro.workloads.random_histories import random_history


def cascade_history(pairs: int):
    """One constraint resolves per fixpoint iteration (the bench_prune
    corpus shape): promoted anti-dependencies are the only bridges
    between consecutive writer pairs."""
    b = HistoryBuilder()
    for i in range(pairs):
        ops = [W(f"k{i}", f"a{i}")]
        if i > 0:
            ops.append(W(f"m{i - 1}", f"mark{i - 1}"))
        b.txn(1 + i, ops)
    for i in range(pairs):
        ops = [R(f"k{i}", f"a{i}")]
        if i + 1 < pairs:
            ops.append(R(f"m{i}", f"mark{i}"))
        b.txn(1 + pairs + i, ops)
    b.txn(0, [R("k0", "a0"), W("k0", "b0")])
    for i in range(1, pairs):
        b.txn(0, [W(f"k{i}", f"b{i}")])
    return b.build()


def assert_witness_valid(cycle):
    """A witness must be a closed induced cycle with no adjacent RWs."""
    assert cycle, "violating prune must reconstruct a witness"
    for edge, nxt in zip(cycle, cycle[1:] + cycle[:1]):
        assert edge[1] == nxt[0], cycle
    labels = [e[2] for e in cycle]
    for a, b in zip(labels, labels[1:] + labels[:1]):
        assert not (a == RW and b == RW), cycle


def assert_parity(history):
    """The satellite contract: identical verdicts, counters, graphs, and
    witness validity between the two fixpoints."""
    g_inc, v1 = build_polygraph(history)
    g_ref, v2 = build_polygraph(history)
    assert bool(v1) == bool(v2)
    if v1:  # decided at construction; pruning never runs
        return None
    r_inc = prune_constraints(g_inc)
    r_ref = prune_constraints_recompute(g_ref)
    assert r_inc.as_dict() == r_ref.as_dict()
    assert sorted(map(str, g_inc.known_edges)) == sorted(
        map(str, g_ref.known_edges)
    )
    assert [str(c) for c in g_inc.constraints] == [
        str(c) for c in g_ref.constraints
    ]
    if not r_inc.ok:
        assert_witness_valid(r_inc.violation_cycle)
        assert_witness_valid(r_ref.violation_cycle)
    return r_inc


class TestWorkloadCorpusParity:
    @pytest.mark.parametrize("read_proportion", [0.3, 0.5, 0.95])
    def test_generated_workloads(self, read_proportion):
        for seed in (1, 2):
            params = WorkloadParams(
                sessions=6,
                txns_per_session=25,
                ops_per_txn=6,
                read_proportion=read_proportion,
                keys=150,
                distribution="zipfian",
            )
            history = generate_history(params, seed=seed).history
            result = assert_parity(history)
            assert result is not None and result.ok

    def test_serializable_workload(self):
        params = WorkloadParams(
            sessions=4, txns_per_session=20, ops_per_txn=5, keys=60
        )
        history = generate_history(
            params, seed=3, isolation="serializable"
        ).history
        assert_parity(history)

    @pytest.mark.parametrize("name", sorted(ANOMALY_TEMPLATES))
    def test_anomaly_corpus(self, name):
        for seed in (0, 7):
            history = make_anomaly(name, seed=seed, padding_txns=6)
            assert_parity(history)

    def test_cascade_deep_fixpoint(self):
        result = assert_parity(cascade_history(12))
        assert result.iterations == 13  # one resolution per iteration
        assert result.constraints_after == 0

    def test_random_histories(self):
        for seed in range(40):
            rng = random.Random(seed)
            history = random_history(
                rng, sessions=3, txns_per_session=3, max_ops=4, keys=3
            )
            assert_parity(history)

    def test_numpy_closure_seed(self):
        from repro.utils.reachability import transitive_closure_numpy

        history = generate_history(
            WorkloadParams(sessions=4, txns_per_session=10, ops_per_txn=5,
                           keys=40),
            seed=9,
        ).history
        g1, _ = build_polygraph(history)
        g2, _ = build_polygraph(history)
        r1 = prune_constraints(g1, closure=transitive_closure_numpy)
        r2 = prune_constraints_recompute(g2)
        assert r1.as_dict() == r2.as_dict()


class TestPruneState:
    def graph(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [R("x", 1), W("x", 2)])
        b.txn(2, [W("y", 1)])
        graph, violations = build_polygraph(b.build())
        assert not violations
        return graph

    def test_matches_fresh_closure_after_promotions(self):
        graph = self.graph()
        state = PruneState(graph)
        from repro.core.pruning import WW

        state.add_known((2, 0, WW, "z"))
        state.add_known((1, 2, RW, "z"))
        rows = state.reach.int_rows()
        # Recompute from scratch over the same known edges.
        from repro.core.pruning import _induced_adjacency, _known_adjacency

        dep, antidep = _known_adjacency(graph)
        ki = _induced_adjacency(dep, antidep)
        fresh = transitive_closure_bits(graph.num_vertices, ki)
        assert rows == fresh.rows

    def test_duplicate_promotion_is_noop(self):
        graph = self.graph()
        state = PruneState(graph)
        before_edges = len(graph.known_edges)
        existing = graph.known_edges[0]
        state.add_known(existing)
        assert len(graph.known_edges) == before_edges
        assert not state._pending

    def test_flush_paths_agree(self):
        """A single large-delta reseed and many small-delta per-edge
        flushes produce identical rows, both matching a fresh closure."""
        from repro.core.pruning import WW, _induced_adjacency, _known_adjacency

        def chain_graph():
            b = HistoryBuilder()
            for i in range(40):
                b.txn(i, [W(f"k{i}", i)])
            graph, violations = build_polygraph(b.build())
            assert not violations
            return graph

        bulk_graph = chain_graph()
        bulk = PruneState(bulk_graph)
        for i in range(39):
            bulk.add_known((i, i + 1, WW, f"k{i}"))
        assert len(bulk._pending) == 39  # over the bulk threshold
        rows_bulk = bulk.reach.int_rows()

        step_graph = chain_graph()
        step = PruneState(step_graph)
        for i in range(39):
            step.add_known((i, i + 1, WW, f"k{i}"))
            assert len(step._pending) == 1  # per-edge insert path
            step.reach
        rows_step = step.reach.int_rows()

        dep, antidep = _known_adjacency(bulk_graph)
        fresh = transitive_closure_bits(
            bulk_graph.num_vertices, _induced_adjacency(dep, antidep)
        )
        assert rows_bulk == rows_step == fresh.rows

    def test_cyclic_promotion_keeps_rows_exact(self):
        from repro.core.pruning import WW

        graph = self.graph()
        state = PruneState(graph)
        # 0 -> 1 exists (WR); promote 1 -> 0 to close a cycle.
        state.add_known((1, 0, WW, "c"))
        reach = state.reach
        assert reach.has(0, 0) and reach.has(1, 1)
        assert reach.has(0, 1) and reach.has(1, 0)


class TestSharedKernelRouting:
    """The acceptance criterion: one closure implementation everywhere."""

    def test_online_closure_module_reexports_shared_kernel(self):
        from repro.online import closure as online_closure
        from repro.utils import closure as shared

        assert online_closure.IncrementalClosure is shared.IncrementalClosure

    def test_online_checker_uses_shared_kernel(self):
        from repro.online.checker import OnlineChecker

        checker = OnlineChecker()
        assert isinstance(checker._ki, ClosureBackend)

    def test_prune_state_uses_shared_kernel(self):
        graph, _ = build_polygraph(_tiny_history())
        state = PruneState(graph)
        assert isinstance(state.reach, ClosureBackend)

    def test_parallel_partition_uses_prune_state(self):
        import inspect

        from repro.parallel import partition

        source = inspect.getsource(partition.prune_constraints_parallel)
        assert "PruneState" in source


def _tiny_history():
    b = HistoryBuilder()
    b.txn(0, [W("x", 1)])
    return b.build()


class TestSeededWitnessSearch:
    def test_extra_edge_cycle_found_from_endpoints(self):
        from repro.core.pruning import WW, find_known_cycle

        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [R("x", 1)])
        graph, _ = build_polygraph(b.build())
        cycle = find_known_cycle(graph, [(1, 0, WW, "x")])
        assert cycle is not None
        assert {(e[0], e[1]) for e in cycle} == {(0, 1), (1, 0)}

    def test_no_extra_edges_still_scans_all_starts(self):
        from repro.core.pruning import find_known_cycle
        from repro.core.polygraph import SO, WR

        class Bag:
            known_edges = [(0, 1, WR, "x"), (1, 0, SO, None)]

        assert find_known_cycle(Bag(), []) is not None
