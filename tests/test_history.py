"""Unit tests for the history model (repro.core.history)."""

import pytest

from repro.core.history import (
    ABORTED,
    COMMITTED,
    DuplicateValueError,
    History,
    HistoryBuilder,
    HistoryError,
    INITIAL_VALUE,
    Operation,
    R,
    Transaction,
    W,
)


class TestOperation:
    def test_read_constructor(self):
        op = R("x", 1)
        assert op.is_read and not op.is_write
        assert op.key == "x" and op.value == 1

    def test_write_constructor(self):
        op = W("x", 1)
        assert op.is_write and not op.is_read

    def test_unknown_kind_rejected(self):
        with pytest.raises(HistoryError):
            Operation("x", "k", 1)

    def test_equality_and_hash(self):
        assert R("x", 1) == R("x", 1)
        assert R("x", 1) != W("x", 1)
        assert R("x", 1) != R("x", 2)
        assert hash(R("x", 1)) == hash(R("x", 1))

    def test_repr(self):
        assert repr(R("x", 1)) == "R('x', 1)"
        assert repr(W("y", None)) == "W('y', None)"


class TestTransaction:
    def test_writes_keeps_last_value(self):
        t = Transaction(0, [W("x", 1), W("x", 2), W("y", 3)])
        assert t.writes == {"x": 2, "y": 3}

    def test_external_reads_first_read_only(self):
        t = Transaction(0, [R("x", 1), R("x", 1), R("y", 2)])
        assert t.external_reads == {"x": 1, "y": 2}

    def test_read_after_own_write_is_internal(self):
        t = Transaction(0, [W("x", 1), R("x", 1), R("y", 2)])
        assert "x" not in t.external_reads
        assert t.external_reads == {"y": 2}

    def test_read_before_own_write_is_external(self):
        t = Transaction(0, [R("x", 0), W("x", 1)])
        assert t.external_reads == {"x": 0}
        assert t.writes == {"x": 1}

    def test_all_write_values_in_order(self):
        t = Transaction(0, [W("x", 1), W("y", 9), W("x", 2), W("x", 3)])
        assert t.all_write_values("x") == [1, 2, 3]
        assert t.all_write_values("y") == [9]

    def test_empty_transaction_rejected(self):
        with pytest.raises(HistoryError):
            Transaction(0, [])

    def test_bad_status_rejected(self):
        with pytest.raises(HistoryError):
            Transaction(0, [R("x", 1)], status="maybe")

    def test_name_format(self):
        t = Transaction(0, [R("x", 1)], session=2, index=5)
        assert t.name == "T:(2,5)"


class TestHistory:
    def test_from_ops_assigns_dense_tids(self):
        h = History.from_ops([[[W("x", 1)]], [[R("x", 1)], [W("y", 2)]]])
        assert [t.tid for t in h.transactions] == [0, 1, 2]
        assert h.num_sessions == 2
        assert len(h) == 3

    def test_aborted_marking(self):
        h = History.from_ops(
            [[[W("x", 1)], [W("x", 2)]]], aborted=[(0, 1)]
        )
        assert h.transactions[0].status == COMMITTED
        assert h.transactions[1].status == ABORTED
        assert len(h.committed) == 1

    def test_session_order_pairs_skips_aborted(self):
        h = History.from_ops(
            [[[W("x", 1)], [W("x", 2)], [W("x", 3)]]], aborted=[(0, 1)]
        )
        pairs = [(a.tid, b.tid) for a, b in h.session_order_pairs()]
        assert pairs == [(0, 2)]

    def test_writer_index_unique_values(self):
        h = History.from_ops([[[W("x", 1)]], [[W("x", 2)]]])
        index = h.writer_index
        assert index[("x", 1)].tid == 0
        assert index[("x", 2)].tid == 1

    def test_duplicate_values_rejected(self):
        h = History.from_ops([[[W("x", 1)]], [[W("x", 1)]]])
        with pytest.raises(DuplicateValueError):
            h.validate()

    def test_duplicate_in_aborted_txn_allowed(self):
        h = History.from_ops(
            [[[W("x", 1)]], [[W("x", 1)]]], aborted=[(1, 0)]
        )
        h.validate()  # aborted writes are not indexed

    def test_intermediate_values_not_indexed(self):
        h = History.from_ops([[[W("x", 1), W("x", 2)]]])
        assert ("x", 1) not in h.writer_index
        assert ("x", 2) in h.writer_index

    def test_writers_of(self):
        h = History.from_ops(
            [[[W("x", 1)]], [[W("x", 2), W("y", 3)]], [[R("x", 1)]]]
        )
        assert [t.tid for t in h.writers_of("x")] == [0, 1]
        assert [t.tid for t in h.writers_of("y")] == [1]
        assert h.writers_of("z") == []

    def test_keys_and_op_counts(self):
        h = History.from_ops([[[W("x", 1), R("y", INITIAL_VALUE)]]])
        assert h.keys == {"x", "y"}
        assert h.num_operations == 2

    def test_non_dense_tids_rejected(self):
        t0 = Transaction(0, [W("x", 1)])
        t2 = Transaction(2, [W("y", 1)])
        with pytest.raises(HistoryError):
            History([[t0], [t2]])


class TestHistoryBuilder:
    def test_builder_roundtrip(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [R("x", 1)])
        b.txn(0, [W("x", 2)])
        h = b.build()
        assert h.num_sessions == 2
        assert len(h.sessions[0]) == 2
        assert len(h.sessions[1]) == 1

    def test_builder_returns_position(self):
        b = HistoryBuilder()
        assert b.txn(3, [W("x", 1)]) == (3, 0)
        assert b.txn(3, [W("x", 2)]) == (3, 1)

    def test_builder_sparse_sessions_renumbered(self):
        b = HistoryBuilder()
        b.txn(7, [W("x", 1)])
        b.txn(2, [W("y", 1)], status=ABORTED)
        h = b.build()
        assert h.num_sessions == 2
        # session 2 sorts first and keeps its aborted status
        assert h.sessions[0][0].status == ABORTED

    def test_builder_empty_rejected(self):
        with pytest.raises(HistoryError):
            HistoryBuilder().build()

    def test_builder_bad_status(self):
        b = HistoryBuilder()
        with pytest.raises(HistoryError):
            b.txn(0, [W("x", 1)], status="zombie")
