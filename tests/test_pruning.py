"""Tests for constraint pruning (repro.core.pruning)."""

import random

from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import RW, WW, build_polygraph
from repro.core.pruning import find_known_cycle, prune_constraints
from repro.utils.reachability import transitive_closure_numpy
from repro.workloads.generator import WorkloadParams, generate_history
from repro.workloads.random_histories import random_history

from _helpers import build, long_fork_history, lost_update_history


class TestBasicPruning:
    def test_rmw_resolves_ww_direction(self):
        # Reader-writer: T1 reads x from T0 and writes x, so WW(T1, T0) is
        # impossible (it would close a cycle with WR(T0, T1)).
        h = build([W("x", 1)], [R("x", 1), W("x", 2)])
        graph, _ = build_polygraph(h)
        result = prune_constraints(graph)
        assert result.ok
        assert graph.constraints == []
        assert (0, 1, WW, "x") in graph.known_edges

    def test_session_order_resolves_direction(self):
        # Same session: T0 before T5 on x (Figure 3b).
        h = build((0, [W("x", 1)]), (0, [W("x", 2)]))
        graph, _ = build_polygraph(h)
        result = prune_constraints(graph)
        assert result.ok
        assert graph.constraints == []
        assert (0, 1, WW, "x") in graph.known_edges

    def test_unresolvable_pair_stays(self):
        # Two unrelated blind writers: neither direction is impossible.
        h = build([W("x", 1)], [W("x", 2)])
        graph, _ = build_polygraph(h)
        result = prune_constraints(graph)
        assert result.ok
        assert graph.num_constraints == 1

    def test_iterates_to_fixpoint(self):
        # T0 -> T1 resolution (via RMW) enables T1 -> T2 resolution.
        h = build(
            [W("x", 1)],
            [R("x", 1), W("x", 2)],
            [R("x", 2), W("x", 3)],
        )
        graph, _ = build_polygraph(h)
        result = prune_constraints(graph)
        assert result.ok
        assert graph.constraints == []
        assert result.iterations >= 1
        assert (1, 2, WW, "x") in graph.known_edges

    def test_long_fork_fully_pruned(self):
        """On Figure 3's history the fixpoint iteration resolves every
        constraint: the promoted RW edges make the known induced graph
        itself cyclic, so the violation surfaces at encoding time."""
        graph, _ = build_polygraph(long_fork_history())
        result = prune_constraints(graph)
        assert result.ok  # pruning resolves; it does not decide here
        assert result.constraints_before == 4
        assert result.constraints_after == 0
        cycle = find_known_cycle(graph, [])
        assert cycle is not None
        assert sorted(e[2] for e in cycle) == ["RW", "RW", "WR", "WR"]

    def test_stats_counts(self):
        graph, _ = build_polygraph(lost_update_history())
        result = prune_constraints(graph)
        stats = result.as_dict()
        assert stats["constraints_before"] >= stats["constraints_after"]
        assert stats["unknown_deps_before"] >= stats["unknown_deps_after"]


def both_branches_impossible_history():
    """Both orders of the x-writers close a cycle through *session*
    predecessors of their readers, so pruning itself detects the
    contradiction (Algorithm 2 line 57/65), before any solving.

    Either branch: RW(r1 -> T2) composes with SO(S1 -> r1) while
    WR(T2 -> S1) already links T2 to S1; the or branch is symmetric.
    """
    b = HistoryBuilder()
    b.txn(0, [W("x", 1), W("m1", 1)])       # T1
    b.txn(1, [W("x", 2), W("m2", 1)])       # T2
    b.txn(2, [R("m2", 1)])                  # S1 observes T2
    b.txn(2, [R("x", 1)])                   # r1 then reads T1's x
    b.txn(3, [R("m1", 1)])                  # S2 observes T1
    b.txn(3, [R("x", 2)])                   # r2 then reads T2's x
    return b.build()


class TestPruningViolations:
    def test_lost_update_left_to_solver(self):
        """Lost update is *not* decided by pruning (Figure 4's rules do not
        fire); the paper's Figure 5 cycle likewise comes from MonoSAT."""
        graph, _ = build_polygraph(lost_update_history())
        result = prune_constraints(graph)
        assert result.ok
        assert result.constraints_after == 1

    def test_both_branches_impossible(self):
        graph, _ = build_polygraph(both_branches_impossible_history())
        result = prune_constraints(graph)
        assert not result.ok
        assert result.violation_constraint is not None
        assert result.violation_cycle is not None

    def test_violation_cycle_is_closed(self):
        graph, _ = build_polygraph(both_branches_impossible_history())
        result = prune_constraints(graph)
        cycle = result.violation_cycle
        for (edge, nxt) in zip(cycle, cycle[1:] + cycle[:1]):
            assert edge[1] == nxt[0], cycle

    def test_violation_cycle_has_no_adjacent_rw(self):
        graph, _ = build_polygraph(both_branches_impossible_history())
        cycle = prune_constraints(graph).violation_cycle
        labels = [e[2] for e in cycle]
        for a, b in zip(labels, labels[1:] + labels[:1]):
            assert not (a == RW and b == RW)

    def test_checker_reports_pruning_stage(self):
        from repro.core.checker import check_snapshot_isolation

        res = check_snapshot_isolation(both_branches_impossible_history())
        assert not res.satisfies_si
        assert res.decided_by == "pruning"


class TestNumpyKernel:
    def test_numpy_closure_equivalent(self, rng):
        for seed in range(20):
            local = random.Random(seed)
            h = random_history(local, sessions=3, txns_per_session=2,
                               max_ops=4, keys=3)
            g1, v1 = build_polygraph(h)
            g2, v2 = build_polygraph(h)
            if v1:
                continue
            r1 = prune_constraints(g1)
            r2 = prune_constraints(g2, closure=transitive_closure_numpy)
            assert r1.ok == r2.ok
            assert sorted(map(str, g1.known_edges)) == sorted(
                map(str, g2.known_edges)
            )


class TestFindKnownCycle:
    def test_no_cycle_returns_none(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        assert find_known_cycle(graph, []) is None

    def test_extra_edges_close_cycle(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        cycle = find_known_cycle(graph, [(1, 0, WW, "x")])
        assert cycle is not None
        assert {(e[0], e[1]) for e in cycle} == {(0, 1), (1, 0)}

    def test_composed_rw_hop_expanded(self):
        # WR(0->1), RW(1->2), WW(2->0): induced cycle includes the RW hop
        # expanded as two typed edges.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [R("x", 1)])
        b.txn(2, [W("x", 2)])
        graph, _ = build_polygraph(b.build())
        cycle = find_known_cycle(
            graph, [(1, 2, RW, "x"), (2, 0, WW, "x")]
        )
        assert cycle is not None
        labels = [e[2] for e in cycle]
        assert RW in labels


class TestPruningEffectiveness:
    def test_workload_pruning_ratio(self):
        """On generated valid workloads, pruning eliminates the vast
        majority of constraints (Table 3's headline behaviour)."""
        params = WorkloadParams(
            sessions=6, txns_per_session=15, ops_per_txn=6, keys=60
        )
        run = generate_history(params, seed=5)
        graph, _ = build_polygraph(run.history)
        result = prune_constraints(graph)
        assert result.ok
        assert result.constraints_before > 0
        ratio = result.constraints_after / result.constraints_before
        assert ratio < 0.25, (
            result.constraints_before, result.constraints_after
        )
