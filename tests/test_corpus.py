"""Tests for the known-anomaly corpus (the Section 5.2.1 experiment)."""

import pytest

from repro.core.checker import check_snapshot_isolation
from repro.interpret import interpret_violation
from repro.workloads.corpus import (
    ANOMALY_TEMPLATES,
    known_anomaly_corpus,
    make_anomaly,
)

EXPECTED_CLASS = {
    "lost-update": "lost update",
    "long-fork": "long fork",
    "causality-violation": "causality violation",
    "read-skew": "read skew (G-single)",
    "aborted-read": "aborted read",
    "intermediate-read": "intermediate read",
    "monotonic-read-violation": "causality violation",
}


class TestTemplates:
    @pytest.mark.parametrize("name", sorted(ANOMALY_TEMPLATES))
    def test_every_template_violates_si(self, name):
        for seed in range(3):
            history = make_anomaly(name, seed=seed)
            result = check_snapshot_isolation(history)
            assert not result.satisfies_si, (name, seed)

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASS))
    def test_classification_matches_template(self, name):
        history = make_anomaly(name, seed=1)
        result = check_snapshot_isolation(history)
        example = interpret_violation(result)
        assert example.classification == EXPECTED_CLASS[name], name

    @pytest.mark.parametrize("name", sorted(ANOMALY_TEMPLATES))
    def test_padding_does_not_hide_anomalies(self, name):
        history = make_anomaly(name, seed=2, padding_txns=12)
        assert not check_snapshot_isolation(history).satisfies_si

    def test_unknown_template_rejected(self):
        with pytest.raises(ValueError):
            make_anomaly("quantum-entanglement")

    def test_distinct_seeds_distinct_histories(self):
        a = make_anomaly("lost-update", seed=1)
        b = make_anomaly("lost-update", seed=2)
        ops_a = [op for t in a.transactions for op in t.ops]
        ops_b = [op for t in b.transactions for op in t.ops]
        assert ops_a != ops_b


class TestCorpusStream:
    def test_corpus_yields_requested_count(self):
        items = list(known_anomaly_corpus(30, seed=1))
        assert len(items) == 30

    def test_corpus_cycles_all_classes(self):
        names = {name for name, _h in known_anomaly_corpus(20, seed=1)}
        assert names == set(ANOMALY_TEMPLATES)

    def test_corpus_sample_fully_detected(self):
        """A slice of the 2477-anomaly reproduction (the full sweep runs in
        benchmarks/bench_corpus.py)."""
        missed = [
            name
            for name, history in known_anomaly_corpus(90, seed=7)
            if check_snapshot_isolation(history).satisfies_si
        ]
        assert missed == []
