"""Tests for the acyclicity theory and the MonoSAT-style facade."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.graph import AcyclicityTheory, StaticCycleError
from repro.solver.monosat import AcyclicGraphSolver


def forced_edge_solver(n, edges, static=None):
    solver = AcyclicGraphSolver(n, static_adj=static)
    for (u, v) in edges:
        var = solver.new_var()
        solver.add_edge(var, u, v)
        solver.add_clause([var])
    return solver


class TestTheoryDirect:
    def test_self_loop_conflicts(self):
        theory = AcyclicityTheory(2)
        theory.register_edge(1, 0, 0)
        assert theory.assert_var(1, 0) == [1]

    def test_two_cycle_detected(self):
        theory = AcyclicityTheory(2)
        theory.register_edge(1, 0, 1)
        theory.register_edge(2, 1, 0)
        assert theory.assert_var(1, 0) is None
        conflict = theory.assert_var(2, 1)
        assert sorted(conflict) == [1, 2]

    def test_backtrack_removes_edges(self):
        theory = AcyclicityTheory(2)
        theory.register_edge(1, 0, 1)
        theory.register_edge(2, 1, 0)
        assert theory.assert_var(1, 5) is None
        theory.backtrack(5)
        assert theory.current_edges() == []
        # After removing 0->1, the reverse edge is fine.
        assert theory.assert_var(2, 6) is None

    def test_static_cycle_rejected(self):
        with pytest.raises(StaticCycleError):
            AcyclicityTheory(2, static_adj=[[1], [0]])

    def test_mixed_static_var_cycle(self):
        # static: 0 -> 1 -> 2; var edge 2 -> 0 closes the cycle but only
        # the variable edge appears in the conflict.
        theory = AcyclicityTheory(3, static_adj=[[1], [2], []])
        theory.register_edge(7, 2, 0)
        assert theory.assert_var(7, 0) == [7]

    def test_var_edge_agreeing_with_static_order(self):
        theory = AcyclicityTheory(3, static_adj=[[1], [2], []])
        theory.register_edge(7, 0, 2)
        assert theory.assert_var(7, 0) is None

    def test_reorder_then_cycle(self):
        # No static edges; insert 1->0 (against initial order), then 0->1.
        theory = AcyclicityTheory(2)
        theory.register_edge(1, 1, 0)
        theory.register_edge(2, 0, 1)
        assert theory.assert_var(1, 0) is None
        conflict = theory.assert_var(2, 1)
        assert sorted(conflict) == [1, 2]

    def test_duplicate_registration_rejected(self):
        theory = AcyclicityTheory(2)
        theory.register_edge(1, 0, 1)
        with pytest.raises(ValueError):
            theory.register_edge(1, 1, 0)

    def test_conflict_reports_minimal_var_chain(self):
        # var edges 0->1, 1->2; static 2->3; var 3->0 closes it.
        theory = AcyclicityTheory(4, static_adj=[[], [], [3], []])
        theory.register_edge(1, 0, 1)
        theory.register_edge(2, 1, 2)
        theory.register_edge(3, 3, 0)
        assert theory.assert_var(1, 0) is None
        assert theory.assert_var(2, 1) is None
        conflict = theory.assert_var(3, 2)
        assert sorted(conflict) == [1, 2, 3]


class TestFacade:
    def test_forced_cycle_unsat(self):
        solver = forced_edge_solver(3, [(0, 1), (1, 2), (2, 0)])
        assert not solver.solve()

    def test_choice_picks_acyclic_option(self):
        solver = AcyclicGraphSolver(3)
        e01, e12, e20, e02 = (solver.new_var() for _ in range(4))
        solver.add_edge(e01, 0, 1)
        solver.add_edge(e12, 1, 2)
        solver.add_edge(e20, 2, 0)
        solver.add_edge(e02, 0, 2)
        solver.add_clause([e01])
        solver.add_clause([e12])
        solver.add_clause([e20, e02])
        assert solver.solve()
        assert solver.model_value(e02)
        assert not solver.model_value(e20)

    def test_true_edges_reflect_model(self):
        solver = forced_edge_solver(3, [(0, 1), (1, 2)])
        assert solver.solve()
        edges = {(u, v) for (u, v, _var) in solver.true_edges()}
        assert edges == {(0, 1), (1, 2)}

    def test_solve_without_acyclicity(self):
        solver = forced_edge_solver(2, [(0, 1), (1, 0)])
        assert not solver.solve()
        plain = solver.solve_without_acyclicity()
        # Both edges are forced true in the theory-free model.
        for var, _edge in solver._edges.items():
            assert plain.model_value(var)

    def test_static_edges_constrain_search(self):
        # static chain 0->1->2; forcing var edge 2->0 is UNSAT.
        solver = forced_edge_solver(3, [(2, 0)], static=[[1], [2], []])
        assert not solver.solve()


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    m = draw(st.integers(min_value=1, max_value=14))
    edges = set()
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        edges.add((u, v))
    return n, sorted(edges)


class TestAgainstNetworkx:
    @given(random_digraphs())
    @settings(max_examples=200, deadline=None)
    def test_forced_graph_acyclicity(self, instance):
        n, edges = instance
        solver = forced_edge_solver(n, edges)
        want = nx.is_directed_acyclic_graph(nx.DiGraph(edges)) if edges else True
        assert solver.solve() == want

    @given(random_digraphs(), random_digraphs())
    @settings(max_examples=100, deadline=None)
    def test_static_plus_var_split(self, static_part, var_part):
        """Splitting edges between static and variable must not change the
        verdict (when the static part alone is acyclic)."""
        n1, static_edges = static_part
        n2, var_edges = var_part
        n = max(n1, n2)
        static_graph = nx.DiGraph(static_edges)
        if static_edges and not nx.is_directed_acyclic_graph(static_graph):
            return  # static part must be acyclic by contract
        static_adj = [[] for _ in range(n)]
        for u, v in static_edges:
            static_adj[u].append(v)
        solver = forced_edge_solver(n, var_edges, static=static_adj)
        combined = nx.DiGraph(list(static_edges) + list(var_edges))
        want = (
            nx.is_directed_acyclic_graph(combined)
            if combined.edges
            else True
        )
        assert solver.solve() == want
