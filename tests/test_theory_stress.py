"""Stress tests for the Pearce-Kelly acyclicity theory under realistic
solver interaction patterns: interleaved assertions and backtracks.

The theory's trickiest invariant is that the topological order stays
valid across arbitrary assert/backtrack sequences (removals keep any
valid order valid; insertions locally reorder).  These tests drive random
operation sequences and compare every answer against networkx on the
reconstructed edge set.
"""

import random

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.solver.graph import AcyclicityTheory


def _would_be_acyclic(edges, new_edge) -> bool:
    graph = nx.DiGraph(list(edges))
    graph.add_edge(*new_edge)
    return nx.is_directed_acyclic_graph(graph)


@st.composite
def operation_scripts(draw):
    """A random script of assert/backtrack operations over a small graph."""
    n = draw(st.integers(min_value=2, max_value=6))
    length = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(length):
        if draw(st.booleans()):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            ops.append(("assert", u, v))
        else:
            ops.append(("backtrack", draw(st.integers(min_value=0, max_value=length))))
    return n, ops


class TestRandomScripts:
    @given(operation_scripts())
    @settings(max_examples=200, deadline=None)
    def test_matches_networkx_on_every_step(self, script):
        n, ops = script
        theory = AcyclicityTheory(n)
        var_counter = 0
        # Reference state: list of (u, v, trail_pos) currently asserted.
        reference = []
        trail_pos = 0
        for op in ops:
            if op[0] == "assert":
                _tag, u, v = op
                var_counter += 1
                theory.register_edge(var_counter, u, v)
                current_edges = [(a, b) for a, b, _p in reference]
                want_ok = u != v and _would_be_acyclic(current_edges, (u, v))
                conflict = theory.assert_var(var_counter, trail_pos)
                if want_ok:
                    assert conflict is None, (ops, op)
                    reference.append((u, v, trail_pos))
                else:
                    assert conflict is not None, (ops, op)
                    assert var_counter in conflict
                trail_pos += 1
            else:
                _tag, level = op
                theory.backtrack(level)
                reference = [e for e in reference if e[2] < level]
                trail_pos = max(trail_pos, level)
        # Final state agrees.
        got = {(u, v) for u, v, _var in theory.current_edges()}
        want = {(u, v) for u, v, _p in reference}
        assert got == want

    @given(operation_scripts())
    @settings(max_examples=100, deadline=None)
    def test_conflicts_are_real_cycles(self, script):
        """Every conflict the theory reports must name edges that actually
        form a cycle together with the rejected edge."""
        n, ops = script
        theory = AcyclicityTheory(n)
        var_counter = 0
        edge_of = {}
        reference = []
        trail_pos = 0
        for op in ops:
            if op[0] == "assert":
                _tag, u, v = op
                var_counter += 1
                theory.register_edge(var_counter, u, v)
                edge_of[var_counter] = (u, v)
                conflict = theory.assert_var(var_counter, trail_pos)
                if conflict is None:
                    reference.append((u, v, trail_pos))
                else:
                    cycle_edges = [edge_of[var] for var in conflict]
                    graph = nx.DiGraph(cycle_edges)
                    assert not nx.is_directed_acyclic_graph(graph), (
                        ops, conflict, cycle_edges,
                    )
                trail_pos += 1
            else:
                _tag, level = op
                theory.backtrack(level)
                reference = [e for e in reference if e[2] < level]
                trail_pos = max(trail_pos, level)


class TestStaticSubstrateScripts:
    @given(operation_scripts(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_with_random_static_dag(self, script, static_seed):
        n, ops = script
        rng = random.Random(static_seed)
        # Random DAG respecting vertex order (always acyclic).
        static_edges = set()
        for _ in range(rng.randint(0, 2 * n)):
            u, v = sorted(rng.sample(range(n), 2))
            static_edges.add((u, v))
        static_adj = [[] for _ in range(n)]
        for u, v in static_edges:
            static_adj[u].append(v)

        theory = AcyclicityTheory(n, static_adj=static_adj)
        var_counter = 0
        reference = []
        trail_pos = 0
        for op in ops:
            if op[0] == "assert":
                _tag, u, v = op
                var_counter += 1
                theory.register_edge(var_counter, u, v)
                current = list(static_edges) + [
                    (a, b) for a, b, _p in reference
                ]
                want_ok = u != v and _would_be_acyclic(current, (u, v))
                conflict = theory.assert_var(var_counter, trail_pos)
                assert (conflict is None) == want_ok, (ops, op, static_edges)
                if conflict is None:
                    reference.append((u, v, trail_pos))
                trail_pos += 1
            else:
                _tag, level = op
                theory.backtrack(level)
                reference = [e for e in reference if e[2] < level]
                trail_pos = max(trail_pos, level)
