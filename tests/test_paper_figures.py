"""Literal reproductions of the paper's figure histories.

These tests build the exact transaction/operation structures shown in
Figures 2, 3, 5, 12, and 13 and assert that the checker and interpreter
reproduce the paper's conclusions on them.
"""

import json

from repro.core.checker import check_snapshot_isolation
from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import build_polygraph
from repro.interpret import interpret_violation


class TestFigure2:
    """Generalized vs plain polygraphs: two writers, two readers of x."""

    def _history(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])            # T
        b.txn(1, [R("x", 1)])            # T'
        b.txn(2, [W("x", 2)])            # S
        b.txn(3, [R("x", 2)])            # S'
        return b.build()

    def test_single_generalized_constraint(self):
        graph, _ = build_polygraph(self._history(), compact=True)
        assert graph.num_constraints == 1
        (cons,) = graph.constraints
        # Each branch: one WW edge plus one reader RW edge (Example 10).
        assert len(cons.either) == 2
        assert len(cons.orelse) == 2

    def test_plain_constraints_are_more_numerous(self):
        graph, _ = build_polygraph(self._history(), compact=False)
        assert graph.num_constraints == 3

    def test_history_satisfies_si(self):
        assert check_snapshot_isolation(self._history()).satisfies_si


class TestFigure3LongFork:
    """The worked 'long fork' example of Section 4.1."""

    def _history(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 0), W("y", 0)])   # T0
        b.txn(0, [W("x", 2)])              # T5, same session
        b.txn(1, [W("x", 1)])              # T1
        b.txn(2, [W("y", 1)])              # T2
        b.txn(3, [R("x", 1), R("y", 0)])   # T3
        b.txn(4, [R("x", 0), R("y", 1)])   # T4
        return b.build()

    def test_violation_detected(self):
        assert not check_snapshot_isolation(self._history()).satisfies_si

    def test_witness_is_figure_3e_cycle(self):
        result = check_snapshot_isolation(self._history())
        vertices = {result.polygraph.vertex_name(e[0]) for e in result.cycle}
        # T1, T2, T3, T4 — not T0 or T5.
        assert vertices == {"T:(1,0)", "T:(2,0)", "T:(3,0)", "T:(4,0)"}
        assert sorted(e[2] for e in result.cycle) == ["RW", "RW", "WR", "WR"]

    def test_classified_as_long_fork(self):
        result = check_snapshot_isolation(self._history())
        assert interpret_violation(result).classification == "long fork"


class TestFigure5MariaDBGalera:
    """The lost-update counterexample walkthrough of Section 5.3."""

    def _history(self):
        b = HistoryBuilder()
        # Session 1: ... T:(1,4) writes 0=4, then T:(1,5) RMWs it.
        b.txn(1, [W(0, 4)])
        b.txn(1, [R(0, 4), W(0, 5)])
        # Session 2: T:(2,13) concurrently RMWs the same version.
        b.txn(2, [R(0, 4), W(0, 13)])
        return b.build()

    def test_lost_update_detected_and_classified(self):
        result = check_snapshot_isolation(self._history())
        assert not result.satisfies_si
        example = interpret_violation(result)
        assert example.classification == "lost update"

    def test_finalized_scenario_matches_figure_5d(self):
        result = check_snapshot_isolation(self._history())
        example = interpret_violation(result)
        kinds = sorted(e[2] for e in example.finalized if e[2] != "SO")
        # Figure 5(d): two WR, two WW, two RW edges.
        assert kinds == ["RW", "RW", "WR", "WR", "WW", "WW"]


class TestFigure12Dgraph:
    """The Dgraph causality violation of Appendix D.1, verbatim."""

    def _history(self):
        b = HistoryBuilder()
        # Session 10: T:(10,467) -> T:(10,471) -> T:(10,472)
        b.txn(10, [R(753, 1)])              # T:(10,467)
        b.txn(10, [W(656, 7)])              # T:(10,471)
        b.txn(10, [W(443, 10), W(402, 7)])  # T:(10,472)
        # Session 9: T:(9,423) -> T:(9,428)
        b.txn(9, [R(248, 11)])              # T:(9,423)
        b.txn(9, [W(402, 6), R(656, 3)])    # T:(9,428)
        # Session 8: T:(8,380) -> T:(8,383)
        b.txn(8, [R(443, 10)])              # T:(8,380)
        b.txn(8, [W(248, 11)])              # T:(8,383)
        # Session 4: T:(4,172)
        b.txn(4, [W(656, 3), W(753, 1)])    # T:(4,172)
        return b.build()

    def test_violation_detected(self):
        result = check_snapshot_isolation(self._history())
        assert not result.satisfies_si

    def test_interpretation_completes(self):
        result = check_snapshot_isolation(self._history())
        example = interpret_violation(result)
        assert example.classification in (
            "causality violation", "SI violation (cycle)", "long fork",
        )
        assert example.finalized
        assert "digraph" in example.to_dot()


class TestFigure13YugabyteDB:
    """The YugabyteDB causality violation of Appendix D.2, verbatim."""

    def _history(self):
        b = HistoryBuilder()
        # Session 0: T:(0,6) -> T:(0,7) -> T:(0,9)
        b.txn(0, [R(13, 21)])               # T:(0,6)
        b.txn(0, [W(10, 3)])                # T:(0,7)
        b.txn(0, [R(10, 26)])               # T:(0,9)
        # Session 1: T:(1,15)
        b.txn(1, [W(10, 26), W(13, 21)])    # T:(1,15)
        return b.build()

    def test_violation_detected(self):
        assert not check_snapshot_isolation(self._history()).satisfies_si

    def test_classified_as_causality_violation(self):
        result = check_snapshot_isolation(self._history())
        example = interpret_violation(result)
        assert example.classification == "causality violation"

    def test_missing_participant_restored(self):
        """The paper restores T:(0,9) (alternatively the cycle may already
        contain it); the finalized scenario must involve both sessions."""
        result = check_snapshot_isolation(self._history())
        example = interpret_violation(result)
        sessions = set()
        for edge in example.finalized:
            for vertex in (edge[0], edge[1]):
                txn = example.graph.vertex_txn(vertex)
                if txn is not None:
                    sessions.add(txn.session)
        assert sessions == {0, 1}


class TestResultJson:
    def test_verdict_json_roundtrips(self):
        result = check_snapshot_isolation(
            TestFigure5MariaDBGalera()._history()
        )
        payload = json.loads(result.to_json())
        assert payload["satisfies_si"] is False
        assert payload["cycle"]
        assert payload["timings"]

    def test_valid_json(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        payload = json.loads(check_snapshot_isolation(b.build()).to_json())
        assert payload["satisfies_si"] is True
