"""White-box tests for the interpretation algorithm internals."""

from repro.core.checker import check_snapshot_isolation
from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import RW, WW, build_polygraph
from repro.interpret.interpretation import (
    _index_constraints,
    _potential_adjacency,
    _shortest_cycle_through,
    interpret_violation,
)

from _helpers import long_fork_history, lost_update_history


class TestConstraintIndex:
    def test_every_constraint_edge_indexed(self):
        graph, _ = build_polygraph(lost_update_history())
        index = _index_constraints(graph)
        for cons in graph.constraints:
            for edge in cons.either:
                assert index[edge][0] is cons
                assert index[edge][1] == "either"
            for edge in cons.orelse:
                assert index[edge][0] is cons
                assert index[edge][1] == "orelse"


class TestPotentialAdjacency:
    def test_includes_known_and_constraint_edges(self):
        graph, _ = build_polygraph(lost_update_history())
        adj = _potential_adjacency(graph)
        all_edges = {e for edges in adj.values() for e in edges}
        for edge in graph.known_edges:
            assert edge in all_edges
        for cons in graph.constraints:
            for edge in cons.either + cons.orelse:
                assert edge in all_edges

    def test_adjacency_keyed_by_source(self):
        graph, _ = build_polygraph(lost_update_history())
        adj = _potential_adjacency(graph)
        for src, edges in adj.items():
            assert all(e[0] == src for e in edges)


class TestShortestCycleThrough:
    def test_finds_two_cycle(self):
        adj = {
            0: [(0, 1, WW, "x")],
            1: [(1, 0, WW, "x")],
        }
        cycle = _shortest_cycle_through(adj, (0, 1, WW, "x"))
        assert cycle is not None
        assert len(cycle) == 2
        assert cycle[0] == (0, 1, WW, "x")

    def test_prefers_shortest_path_back(self):
        adj = {
            0: [(0, 1, WW, "x")],
            1: [(1, 0, RW, "x"), (1, 2, WW, "x")],
            2: [(2, 0, WW, "x")],
        }
        cycle = _shortest_cycle_through(adj, (0, 1, WW, "x"))
        assert len(cycle) == 2  # via the direct back-edge, not via 2

    def test_none_when_unreachable(self):
        adj = {0: [(0, 1, WW, "x")]}
        assert _shortest_cycle_through(adj, (0, 1, WW, "x")) is None

    def test_self_loop_edge(self):
        cycle = _shortest_cycle_through({}, (3, 3, RW, "x"))
        assert cycle == [(3, 3, RW, "x")]


class TestAdjoiningCycles:
    def test_acs_contains_primary_cycle(self):
        result = check_snapshot_isolation(lost_update_history())
        example = interpret_violation(result)
        assert example.acs_cycles
        assert example.acs_cycles[0] == list(result.cycle)

    def test_acs_covers_opposite_branches(self):
        """For each constraint used by the primary cycle, an adjoining
        cycle exercising the opposite branch must be present (Appendix E:
        minimal violations are complete adjoining cycle sets)."""
        result = check_snapshot_isolation(lost_update_history())
        example = interpret_violation(result)
        graph = result.polygraph
        index = _index_constraints(graph)
        used = set()
        for edge in example.cycle:
            hit = index.get(edge)
            if hit:
                used.add(id(hit[0]))
        # Every used constraint appears via some edge in later acs cycles
        # or was resolved as certain.
        covered = set()
        for cycle in example.acs_cycles[1:]:
            for edge in cycle:
                hit = index.get(edge)
                if hit:
                    covered.add(id(hit[0]))
        resolved_certain = {
            id(index[e][0]) for e in example.resolved
            if e in index and example.resolved[e] == "certain"
        }
        assert used <= covered | resolved_certain


class TestStageMonotonicity:
    def test_certain_edges_never_downgraded(self):
        result = check_snapshot_isolation(long_fork_history())
        example = interpret_violation(result)
        for edge, status in example.recovered.items():
            if status == "certain":
                assert example.resolved.get(edge) == "certain"

    def test_finalized_subset_of_certain(self):
        result = check_snapshot_isolation(long_fork_history())
        example = interpret_violation(result)
        for edge in example.finalized:
            assert example.resolved.get(edge, "certain") == "certain"
