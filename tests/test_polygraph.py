"""Tests for generalized polygraph construction (repro.core.polygraph)."""

from repro.core.history import History, HistoryBuilder, R, W
from repro.core.polygraph import (
    RW,
    SO,
    WR,
    WW,
    build_polygraph,
)

from _helpers import build, long_fork_history


class TestKnownEdges:
    def test_so_covering_edges(self):
        h = build((0, [W("x", 1)]), (0, [W("x", 2)]), (0, [W("x", 3)]))
        graph, violations = build_polygraph(h)
        assert violations == []
        so = {(e[0], e[1]) for e in graph.known_by_label(SO)}
        assert so == {(0, 1), (1, 2)}  # covering pairs only

    def test_wr_edges_resolved_by_value(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        wr = graph.known_by_label(WR)
        assert wr == [(0, 1, WR, "x")]
        assert graph.readers_from[(0, "x")] == [1]

    def test_aborted_txns_excluded(self):
        h = History.from_ops(
            [[[W("x", 1)]], [[W("x", 2)]]], aborted=[(1, 0)]
        )
        graph, _ = build_polygraph(h)
        assert graph.constraints == []  # only one committed writer

    def test_unjustified_read_reported(self):
        h = build([R("x", 42)])
        _graph, violations = build_polygraph(h)
        assert len(violations) == 1
        assert violations[0].axiom == "UnjustifiedRead"

    def test_future_read_reported(self):
        h = build([R("x", 1), W("x", 1)])
        _graph, violations = build_polygraph(h)
        assert violations[0].axiom == "FutureRead"


class TestInitVertex:
    def test_initial_read_materializes_init(self):
        h = build([R("x", None)], [W("x", 1)])
        graph, _ = build_polygraph(h)
        assert graph.init_vertex == 2
        assert graph.num_vertices == 3
        ww = graph.known_by_label(WW)
        assert (2, 1, WW, "x") in ww
        rw = graph.known_by_label(RW)
        assert (0, 1, RW, "x") in rw  # init reader anti-depends on writer

    def test_no_initial_reads_no_init_vertex(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        assert graph.init_vertex is None
        assert graph.num_vertices == 2

    def test_init_vertex_name(self):
        h = build([R("x", None)])
        graph, _ = build_polygraph(h)
        assert graph.vertex_name(graph.init_vertex) == "T:init"


class TestConstraints:
    def test_pair_of_writers_yields_one_constraint(self):
        h = build([W("x", 1)], [W("x", 2)])
        graph, _ = build_polygraph(h)
        assert graph.num_constraints == 1
        (cons,) = graph.constraints
        assert cons.pair in ((0, 1), (1, 0))
        assert cons.either[0][2] == WW
        assert cons.orelse[0][2] == WW

    def test_constraint_includes_reader_rw_edges(self):
        h = build([W("x", 1)], [W("x", 2)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        (cons,) = graph.constraints
        branches = {cons.either, cons.orelse}
        # The branch ordering writer0 before writer1 must push reader 2
        # after... i.e. contain the RW edge (2, 1).
        rw_edges = {
            edge for branch in branches for edge in branch if edge[2] == RW
        }
        assert (2, 1, RW, "x") in rw_edges

    def test_reader_equal_to_other_writer_skipped(self):
        # Reader 1 also writes x: no RW self-edge may appear.
        h = build([W("x", 1)], [R("x", 1), W("x", 2)])
        graph, _ = build_polygraph(h)
        for cons in graph.constraints:
            for edge in cons.either + cons.orelse:
                assert edge[0] != edge[1]

    def test_three_writers_three_constraints(self):
        h = build([W("x", 1)], [W("x", 2)], [W("x", 3)])
        graph, _ = build_polygraph(h)
        assert graph.num_constraints == 3  # one per unordered pair

    def test_constraint_count_long_fork(self):
        graph, _ = build_polygraph(long_fork_history())
        # x has writers T0, T5, T1 -> 3 pairs; y has T0, T2 -> 1 pair.
        assert graph.num_constraints == 4

    def test_unknown_dep_count(self):
        h = build([W("x", 1)], [W("x", 2)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        assert graph.num_unknown_deps == 3  # WW + WW + one RW


class TestCompaction:
    def test_non_compact_generates_more_constraints(self):
        h = build([W("x", 1)], [W("x", 2)], [R("x", 1)], [R("x", 2)])
        compact, _ = build_polygraph(h, compact=True)
        expanded, _ = build_polygraph(h, compact=False)
        assert expanded.num_constraints > compact.num_constraints

    def test_non_compact_base_constraint_per_pair(self):
        h = build([W("x", 1)], [W("x", 2)])
        expanded, _ = build_polygraph(h, compact=False)
        # No readers: just the WW direction choice.
        assert expanded.num_constraints == 1

    def test_copy_independent(self):
        h = build([W("x", 1)], [W("x", 2)])
        graph, _ = build_polygraph(h)
        clone = graph.copy()
        clone.constraints = []
        clone.add_known((0, 1, WW, "x"))
        assert graph.num_constraints == 1
        assert (0, 1, WW, "x") not in graph.known_edges

    def test_add_known_dedupes(self):
        h = build([W("x", 1)])
        graph, _ = build_polygraph(h)
        before = len(graph.known_edges)
        graph.add_known((0, 0, SO, None))
        graph.add_known((0, 0, SO, None))
        assert len(graph.known_edges) == before + 1
