"""Tests for the PolySI-List extension (repro.listappend)."""

import random

import pytest

from repro.core.history import ABORTED, HistoryError
from repro.listappend import (
    A,
    L,
    ListAppendChecker,
    ListHistoryBuilder,
    build_list_polygraph,
    check_list_history,
    generate_list_history,
    generate_list_workload,
    register_view,
)
from repro.storage.faults import FaultConfig
from repro.workloads.generator import WorkloadParams


def lh(*session_txns):
    b = ListHistoryBuilder()
    for i, ops in enumerate(session_txns):
        if isinstance(ops, tuple) and isinstance(ops[0], int):
            b.txn(ops[0], ops[1])
        else:
            b.txn(i, ops)
    return b.build()


class TestModel:
    def test_append_and_read_ops(self):
        op = A("x", 1)
        assert op.is_append
        op = L("x", [1, 2])
        assert op.value == (1, 2)

    def test_transaction_appends_view(self):
        b = ListHistoryBuilder()
        b.txn(0, [A("x", 1), A("y", 2), A("x", 3)])
        h = b.build()
        assert h.transactions[0].appends == {"x": (1, 3), "y": (2,)}

    def test_external_reads_before_own_append(self):
        b = ListHistoryBuilder()
        b.txn(0, [L("x", ()), A("x", 1), L("x", (1,))])
        h = b.build()
        assert h.transactions[0].external_reads == {"x": ()}

    def test_empty_txn_rejected(self):
        b = ListHistoryBuilder()
        b.txn(0, [])
        with pytest.raises(HistoryError):
            b.build()

    def test_register_view_conversion(self):
        h = lh([A("x", 1)], [L("x", (1,))])
        reg = register_view(h)
        assert reg.transactions[0].writes == {"x": 1}
        assert reg.transactions[1].external_reads == {"x": 1}


class TestInference:
    def test_observed_chain_becomes_known_ww(self):
        h = lh([A("x", 1)], [A("x", 2)], [L("x", (1, 2))])
        graph, violations, _ = build_list_polygraph(h)
        assert violations == []
        assert graph.constraints == []  # fully resolved by observation
        ww = {(e[0], e[1]) for e in graph.known_by_label("WW")}
        assert (0, 1) in ww

    def test_unobserved_appends_yield_constraints(self):
        h = lh([A("x", 1)], [A("x", 2)])
        graph, violations, _ = build_list_polygraph(h)
        assert violations == []
        assert len(graph.constraints) == 1

    def test_prefix_violation_detected(self):
        h = lh([A("x", 1)], [A("x", 2)], [L("x", (1, 2))], [L("x", (2, 1))])
        _graph, violations, _ = build_list_polygraph(h)
        assert any(v.axiom == "ListPrefixViolation" for v in violations)

    def test_aborted_append_observed(self):
        b = ListHistoryBuilder()
        b.txn(0, [A("x", 1)], status=ABORTED)
        b.txn(1, [L("x", (1,))])
        _graph, violations, _ = build_list_polygraph(b.build())
        assert any(v.axiom == "AbortedReads" for v in violations)

    def test_never_appended_value_observed(self):
        h = lh([L("x", (9,))])
        _graph, violations, _ = build_list_polygraph(h)
        assert any(v.axiom == "UnjustifiedRead" for v in violations)

    def test_split_append_block_detected(self):
        # txn 0 appends 1 and 2 atomically; a read observing only [1]
        # splits the block.
        h = lh([A("x", 1), A("x", 2)], [L("x", (1,))])
        _graph, violations, _ = build_list_polygraph(h)
        assert any(v.axiom == "IntermediateReads" for v in violations)

    def test_duplicate_append_detected(self):
        h = lh([A("x", 1)], [A("x", 1)])
        _graph, violations, _ = build_list_polygraph(h)
        assert any(v.axiom == "DuplicateAppend" for v in violations)

    def test_internal_read_must_include_own_append(self):
        b = ListHistoryBuilder()
        b.txn(0, [A("x", 1), L("x", ())])
        _graph, violations, _ = build_list_polygraph(b.build())
        assert any(v.axiom == "Int" for v in violations)


class TestChecker:
    def test_valid_history(self):
        h = lh([A("x", 1)], [A("x", 2)], [L("x", (1, 2))], [L("x", (1,))])
        assert check_list_history(h).satisfies_si

    def test_long_fork_on_lists(self):
        h = lh(
            [A("x", 1)],
            [A("y", 2)],
            [L("x", (1,)), L("y", ())],
            [L("x", ()), L("y", (2,))],
        )
        res = check_list_history(h)
        assert not res.satisfies_si

    def test_lost_update_on_lists(self):
        # Two transactions observe the empty list and both append: under
        # SI one of them must have aborted.
        h = lh(
            [L("x", ()), A("x", 1)],
            [L("x", ()), A("x", 2)],
            [L("x", (1, 2))],
        )
        assert not check_list_history(h).satisfies_si

    def test_causality_violation_on_lists(self):
        h = lh(
            (0, [A("x", 1)]),
            (1, [L("x", (1,)), A("x", 2)]),
            (2, [L("x", (1, 2))]),
            (2, [L("x", (1,))]),  # session goes back in time
        )
        assert not check_list_history(h).satisfies_si

    def test_no_prune_variant_agrees(self):
        histories = [
            lh([A("x", 1)], [A("x", 2)], [L("x", (1, 2))]),
            lh([L("x", ()), A("x", 1)], [L("x", ()), A("x", 2)],
               [L("x", (1, 2))]),
        ]
        for h in histories:
            assert (
                ListAppendChecker(prune=False).check(h).satisfies_si
                == ListAppendChecker(prune=True).check(h).satisfies_si
            )


class TestGeneratorAndStore:
    def test_workload_shape(self):
        params = WorkloadParams(
            sessions=3, txns_per_session=4, ops_per_txn=5, keys=4
        )
        spec = generate_list_workload(params, seed=1)
        assert len(spec) == 3
        appends = [
            op for s in spec for t in s for op in t if op[0] == "a"
        ]
        values = [op[2] for op in appends]
        assert len(values) == len(set(values))

    @pytest.mark.parametrize("seed", range(6))
    def test_si_store_histories_valid(self, seed):
        params = WorkloadParams(
            sessions=4, txns_per_session=6, ops_per_txn=4, keys=5,
            distribution="uniform",
        )
        h = generate_list_history(params, seed=seed)
        res = check_list_history(h)
        assert res.satisfies_si, res.describe()

    def test_faulty_store_detectable(self):
        params = WorkloadParams(
            sessions=5, txns_per_session=8, ops_per_txn=4, keys=4,
            distribution="uniform",
        )
        found = False
        for seed in range(10):
            h = generate_list_history(
                params, seed=seed,
                faults=FaultConfig(no_first_committer_wins=True),
            )
            if not check_list_history(h).satisfies_si:
                found = True
                break
        assert found

    def test_list_verdict_implies_register_verdict(self):
        """If the list checker accepts, the register checker (with strictly
        less information) must accept the register view too."""
        from repro import check_snapshot_isolation

        params = WorkloadParams(
            sessions=3, txns_per_session=5, ops_per_txn=4, keys=4,
            distribution="uniform",
        )
        for seed in range(5):
            h = generate_list_history(params, seed=seed)
            if check_list_history(h).satisfies_si:
                reg = register_view(h)
                assert check_snapshot_isolation(reg).satisfies_si
