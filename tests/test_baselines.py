"""Baseline-specific tests: the split reduction, Cobra, CobraSI, dbcop."""

import pytest

from repro.baselines.cobra import CobraChecker
from repro.baselines.cobrasi import CobraSIChecker
from repro.baselines.dbcop import DbcopBudgetExceeded, DbcopChecker
from repro.baselines.reduction import TWIN_PREFIX, split_history
from repro.core.history import ABORTED, HistoryBuilder, R, W

from _helpers import (
    build,
    causality_history,
    long_fork_history,
    lost_update_history,
    serializable_history,
    write_skew_history,
)


class TestSplitReduction:
    def test_writing_txn_splits_in_two(self):
        h = build([R("y", None), W("x", 1)])
        split = split_history(h)
        assert len(split) == 2
        read_part, write_part = split.sessions[0]
        assert any(op.is_write and str(op.key).startswith(TWIN_PREFIX)
                   for op in read_part.ops)
        assert any(op.is_read and str(op.key).startswith(TWIN_PREFIX)
                   for op in write_part.ops)

    def test_read_only_txn_stays_whole(self):
        h = build([R("x", None), R("y", None)])
        split = split_history(h)
        assert len(split) == 1

    def test_aborted_txns_dropped(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(0, [W("x", 2)], status=ABORTED)
        split = split_history(b.build())
        assert len(split) == 2  # only the committed writer, split in two

    def test_twin_tokens_unique(self):
        h = build([W("x", 1)], [W("x", 2)])
        split = split_history(h)
        split.validate()  # raises on duplicate values

    def test_session_order_preserved(self):
        h = build((0, [W("x", 1)]), (0, [W("y", 2)]))
        split = split_history(h)
        # Four split transactions in one session, in order.
        assert len(split.sessions[0]) == 4

    def test_internal_reads_dropped(self):
        h = build([W("x", 1), R("x", 1)])
        split = split_history(h)
        read_part = split.sessions[0][0]
        assert not any(op.is_read and op.key == "x" for op in read_part.ops)

    def test_write_skew_split_is_serializable(self):
        """Write skew is SI-legal, so its split must be serializable."""
        split = split_history(write_skew_history())
        assert CobraChecker().check(split).serializable

    def test_lost_update_split_not_serializable(self):
        split = split_history(lost_update_history())
        assert not CobraChecker().check(split).serializable


class TestCobra:
    def test_write_skew_rejected_under_ser(self):
        """The flip side of SI's permissiveness (Figure 1)."""
        assert not CobraChecker().check(write_skew_history()).serializable

    def test_serializable_history_accepted(self):
        assert CobraChecker().check(serializable_history()).serializable

    def test_gpu_variant_agrees(self):
        for history in (
            serializable_history(), write_skew_history(), long_fork_history(),
        ):
            assert (
                CobraChecker(gpu=True).check(history).serializable
                == CobraChecker(gpu=False).check(history).serializable
            )

    def test_no_prune_variant_agrees(self):
        for history in (serializable_history(), write_skew_history()):
            assert (
                CobraChecker(prune=False).check(history).serializable
                == CobraChecker(prune=True).check(history).serializable
            )

    def test_cycle_reported(self):
        res = CobraChecker().check(write_skew_history())
        assert res.cycle is not None
        for edge, nxt in zip(res.cycle, res.cycle[1:] + res.cycle[:1]):
            assert edge[1] == nxt[0]

    def test_axiom_violations_reported(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], status=ABORTED)
        b.txn(1, [R("x", 1)])
        res = CobraChecker().check(b.build())
        assert not res.serializable
        assert res.decided_by == "axioms"

    def test_timings_recorded(self):
        res = CobraChecker().check(serializable_history())
        assert "construct" in res.timings and res.total_time >= 0


class TestCobraSI:
    @pytest.mark.parametrize("gpu", [False, True])
    def test_catalog(self, gpu):
        checker = CobraSIChecker(gpu=gpu)
        assert checker.check(serializable_history()).satisfies_si
        assert checker.check(write_skew_history()).satisfies_si
        assert not checker.check(long_fork_history()).satisfies_si
        assert not checker.check(lost_update_history()).satisfies_si
        assert not checker.check(causality_history()).satisfies_si

    def test_axioms_checked_on_original(self):
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], status=ABORTED)
        b.txn(1, [R("x", 1)])
        res = CobraSIChecker().check(b.build())
        assert not res.satisfies_si
        assert res.decided_by == "axioms"

    def test_timings_include_reduction(self):
        res = CobraSIChecker().check(write_skew_history())
        assert "reduce" in res.timings


class TestDbcop:
    def test_catalog(self):
        checker = DbcopChecker()
        assert checker.check_si(serializable_history()).satisfies
        assert checker.check_si(write_skew_history()).satisfies
        assert not checker.check_si(long_fork_history()).satisfies
        assert not checker.check_si(lost_update_history()).satisfies

    def test_ser_mode(self):
        checker = DbcopChecker()
        assert checker.check_ser(serializable_history()).satisfies
        assert not checker.check_ser(write_skew_history()).satisfies

    def test_incomplete_for_aborted_reads(self):
        """Faithful incompleteness (Section 7): dbcop does not flag
        non-cyclic anomalies."""
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)], status=ABORTED)
        b.txn(1, [R("x", 1)])
        assert DbcopChecker().check_si(b.build()).satisfies

    def test_budget_exceeded_raises(self):
        h = build(
            [W("a", 1), W("b", 2)],
            [W("a", 3), W("c", 4)],
            [W("b", 5), W("c", 6)],
            [W("a", 7), W("b", 8), W("c", 9)],
        )
        with pytest.raises(DbcopBudgetExceeded):
            DbcopChecker(max_states=2).check_si(h)

    def test_states_explored_counted(self):
        res = DbcopChecker().check_si(serializable_history())
        assert res.states_explored > 0

    def test_state_explosion_with_sessions(self):
        """dbcop's frontier space grows combinatorially with concurrency on
        violating histories (which force exhaustive search) — the
        Figure 6(a) behaviour in miniature."""

        def states_for(pad_sessions):
            b = HistoryBuilder()
            # An unsatisfiable core: lost update.
            b.txn(0, [W("k", 1)])
            b.txn(1, [R("k", 1), W("k", 2)])
            b.txn(2, [R("k", 1), W("k", 3)])
            value = 10
            for s in range(pad_sessions):
                for _ in range(2):
                    value += 1
                    b.txn(10 + s, [W(f"pad{s}", value)])
            return DbcopChecker().check_si(b.build()).states_explored

        assert states_for(5) > 8 * states_for(1)
