"""End-to-end integration tests: generate -> execute -> check -> interpret
-> serialize, across the whole public API."""

from repro import (
    HistoryBuilder,
    PolySIChecker,
    R,
    W,
    check_snapshot_isolation,
)
from repro.baselines.cobrasi import CobraSIChecker
from repro.baselines.dbcop import DbcopChecker
from repro.histories.codec import history_from_json, history_to_json
from repro.interpret import interpret_violation
from repro.storage.client import run_workload
from repro.storage.database import MVCCDatabase
from repro.storage.faults import DATABASE_PROFILES
from repro.workloads.generator import WorkloadParams, generate_workload


class TestFullPipeline:
    def test_bank_audit_scenario(self):
        """The Example 2 story: concurrent deposits losing money."""
        b = HistoryBuilder()
        b.txn(0, [W("account", 10)])
        b.txn(1, [R("account", 10), W("account", 60)])   # Dan's deposit
        b.txn(2, [R("account", 10), W("account", 61)])   # Emma's deposit
        result = check_snapshot_isolation(b.build())
        assert not result.satisfies_si
        example = interpret_violation(result)
        assert example.classification == "lost update"
        assert "digraph" in example.to_dot()

    def test_workload_roundtrip_through_json(self):
        params = WorkloadParams(
            sessions=3, txns_per_session=5, ops_per_txn=4, keys=8
        )
        spec = generate_workload(params, seed=9)
        db = MVCCDatabase(seed=9)
        run = run_workload(db, spec, seed=9)
        restored = history_from_json(history_to_json(run.history))
        assert (
            check_snapshot_isolation(restored).satisfies_si
            == check_snapshot_isolation(run.history).satisfies_si
        )

    def test_three_checkers_agree_on_simulated_bug(self):
        """Find a violation with a fault profile, confirm all checkers
        agree (the 'effective' criterion across tools)."""
        faults = DATABASE_PROFILES["mariadb-galera-sim"]["faults"]
        params = WorkloadParams(
            sessions=5, txns_per_session=6, ops_per_txn=4, keys=4,
            distribution="uniform",
        )
        for seed in range(12):
            spec = generate_workload(params, seed=seed)
            db = MVCCDatabase(faults=faults, seed=seed)
            run = run_workload(db, spec, seed=seed)
            poly = check_snapshot_isolation(run.history)
            if not poly.satisfies_si:
                assert not CobraSIChecker().check(run.history).satisfies_si
                # dbcop sees cyclic anomalies only; lost update is cyclic.
                if poly.decided_by != "axioms":
                    assert not DbcopChecker().check_si(run.history).satisfies
                return
        raise AssertionError("fault profile produced no violation in 12 runs")

    def test_checker_reuse_across_histories(self):
        checker = PolySIChecker()
        params = WorkloadParams(
            sessions=3, txns_per_session=4, ops_per_txn=4, keys=10
        )
        for seed in range(3):
            spec = generate_workload(params, seed=seed)
            db = MVCCDatabase(seed=seed)
            run = run_workload(db, spec, seed=seed)
            assert checker.check(run.history).satisfies_si

    def test_interpretation_of_generated_violation(self):
        faults = DATABASE_PROFILES["dgraph-sim"]["faults"]
        params = WorkloadParams(
            sessions=5, txns_per_session=8, ops_per_txn=5, keys=6,
            distribution="uniform",
        )
        for seed in range(12):
            spec = generate_workload(params, seed=seed)
            db = MVCCDatabase(faults=faults, seed=seed)
            run = run_workload(db, spec, seed=seed)
            result = check_snapshot_isolation(run.history)
            if not result.satisfies_si:
                example = interpret_violation(result)
                assert example.classification
                assert example.describe()
                return
        raise AssertionError("no violation found to interpret")

    def test_public_api_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
