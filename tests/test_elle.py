"""Tests for the Elle/Jepsen EDN history parser (repro.listappend.elle)."""

import pytest

from repro.listappend import check_list_history
from repro.listappend.elle import EdnParseError, parse_edn, parse_elle_history


class TestEdnReader:
    def test_scalars(self):
        assert parse_edn("42") == 42
        assert parse_edn("-7") == -7
        assert parse_edn("nil") is None
        assert parse_edn("true") is True
        assert parse_edn("false") is False
        assert parse_edn('"hi\\n"') == "hi\n"

    def test_keyword(self):
        value = parse_edn(":append")
        assert value == "append"

    def test_vector_and_commas(self):
        assert parse_edn("[1, 2, 3]") == [1, 2, 3]
        assert parse_edn("[[:r 5 nil]]") == [["r", 5, None]]

    def test_map(self):
        value = parse_edn("{:type :ok, :process 3}")
        assert value["type"] == "ok"
        assert value["process"] == 3

    def test_comments_skipped(self):
        assert parse_edn("; header\n[1 2]") == [1, 2]

    def test_nested(self):
        value = parse_edn('{:value [[:append 5 1] [:r 5 [1 2]]]}')
        assert value["value"] == [["append", 5, 1], ["r", 5, [1, 2]]]

    def test_errors(self):
        with pytest.raises(EdnParseError):
            parse_edn("[1 2")
        with pytest.raises(EdnParseError):
            parse_edn('"unterminated')
        with pytest.raises(EdnParseError):
            parse_edn("[1] trailing")


ELLE_SAMPLE = """
{:type :invoke, :f :txn, :process 0, :value [[:append 5 1]]}
{:type :ok,     :f :txn, :process 0, :value [[:append 5 1]]}
{:type :invoke, :f :txn, :process 1, :value [[:append 5 2] [:r 5 nil]]}
{:type :ok,     :f :txn, :process 1, :value [[:append 5 2] [:r 5 [1 2]]]}
{:type :invoke, :f :txn, :process 2, :value [[:r 5 nil]]}
{:type :ok,     :f :txn, :process 2, :value [[:r 5 [1]]]}
{:type :fail,   :f :txn, :process 2, :value [[:append 5 9]]}
{:type :info,   :f :txn, :process 3, :value [[:append 5 8]]}
"""


class TestElleHistories:
    def test_parse_sample(self):
        history = parse_elle_history(ELLE_SAMPLE)
        committed = [t for t in history.transactions if t.committed]
        aborted = [t for t in history.transactions if not t.committed]
        assert len(committed) == 3
        assert len(aborted) == 1  # the :fail; the :info is skipped

    def test_sample_satisfies_si(self):
        history = parse_elle_history(ELLE_SAMPLE)
        assert check_list_history(history).satisfies_si

    def test_vector_form(self):
        text = '[{:type :ok :process 0 :value [[:append 1 10]]}]'
        history = parse_elle_history(text)
        assert len(history) == 1

    def test_violating_history_detected(self):
        text = """
        {:type :ok, :process 0, :value [[:append 7 1]]}
        {:type :ok, :process 1, :value [[:append 7 2]]}
        {:type :ok, :process 2, :value [[:r 7 [1 2]]]}
        {:type :ok, :process 3, :value [[:r 7 [2 1]]]}
        """
        history = parse_elle_history(text)
        result = check_list_history(history)
        assert not result.satisfies_si  # incompatible prefixes

    def test_lost_append_detected(self):
        # Both writers observed the empty list, both appends survive:
        # SI would have aborted one of them.
        text = """
        {:type :ok, :process 0, :value [[:r 7 nil] [:append 7 1]]}
        {:type :ok, :process 1, :value [[:r 7 nil] [:append 7 2]]}
        {:type :ok, :process 2, :value [[:r 7 [1 2]]]}
        """
        history = parse_elle_history(text)
        assert not check_list_history(history).satisfies_si

    def test_unsupported_micro_op(self):
        with pytest.raises(EdnParseError):
            parse_elle_history(
                '{:type :ok, :process 0, :value [[:w 1 2]]}'
            )

    def test_empty_input_rejected(self):
        with pytest.raises(EdnParseError):
            parse_elle_history(
                '{:type :invoke, :process 0, :value [[:append 1 1]]}'
            )
