"""Tests for segmented checking (repro.extensions.segmented)."""

import pytest

from repro import check_snapshot_isolation
from repro.core.checker import PolySIChecker
from repro.core.history import HistoryBuilder, R, W
from repro.extensions import check_segmented, run_segmented_workload
from repro.storage.database import MVCCDatabase
from repro.storage.faults import FaultConfig
from repro.workloads.generator import WorkloadParams, generate_workload


def make_run(*, faults=None, seed=0, snapshot_every=25,
             sessions=5, txns=20, ops=5, keys=10):
    params = WorkloadParams(
        sessions=sessions, txns_per_session=txns, ops_per_txn=ops,
        keys=keys, distribution="uniform",
    )
    spec = generate_workload(params, seed=seed)
    db = MVCCDatabase(faults=faults, seed=seed)
    return run_segmented_workload(
        db, spec, snapshot_every=snapshot_every, seed=seed
    )


class TestInitialValues:
    """The polygraph extension that segmentation builds on."""

    def test_custom_initial_value_accepted(self):
        b = HistoryBuilder()
        b.txn(0, [R("x", 41)])     # 41 was written in a previous segment
        b.txn(1, [W("x", 42)])
        history = b.build()
        assert not check_snapshot_isolation(history).satisfies_si
        checker = PolySIChecker(initial_values={"x": 41})
        assert checker.check(history).satisfies_si

    def test_initial_value_partakes_in_version_order(self):
        # Reading the segment-initial value after observing a newer write
        # is still a violation.
        b = HistoryBuilder()
        b.txn(0, [W("x", 42)])
        b.txn(1, [R("x", 42)])
        b.txn(1, [R("x", 41)])     # stale: goes behind its own session
        checker = PolySIChecker(initial_values={"x": 41})
        assert not checker.check(b.build()).satisfies_si

    def test_unlisted_keys_keep_none_initial(self):
        b = HistoryBuilder()
        b.txn(0, [R("y", None)])
        checker = PolySIChecker(initial_values={"x": 41})
        assert checker.check(b.build()).satisfies_si


class TestSegmentedRun:
    def test_segments_created(self):
        run = make_run(snapshot_every=20)
        assert len(run.segments) >= 2
        assert len(run.snapshots) == len(run.segments) - 1

    def test_all_txns_recorded(self):
        run = make_run()
        assert run.total_txns == 5 * 20

    def test_full_history_reconstruction(self):
        run = make_run()
        history = run.full_history()
        assert len(history) == run.total_txns

    def test_snapshots_observe_written_keys(self):
        run = make_run(snapshot_every=20)
        snapshot = run.snapshots[0]
        assert snapshot  # at least one key was written before the barrier
        assert all(v is not None for v in snapshot.values() if v is not None)

    def test_segment_initials_chain(self):
        run = make_run(snapshot_every=20)
        for snapshot, segment in zip(run.snapshots, run.segments[1:]):
            assert segment.initial_values == snapshot


class TestSegmentedChecking:
    @pytest.mark.parametrize("seed", range(5))
    def test_correct_store_passes(self, seed):
        run = make_run(seed=seed)
        result = check_segmented(run)
        assert result.satisfies_si, result

    def test_verdict_matches_whole_history(self):
        for seed in range(4):
            run = make_run(seed=seed)
            seg = check_segmented(run).satisfies_si
            full = check_snapshot_isolation(run.full_history()).satisfies_si
            assert seg == full

    def test_faulty_store_caught(self):
        found = False
        for seed in range(10):
            run = make_run(
                faults=FaultConfig(no_first_committer_wins=True),
                seed=seed, keys=6,
            )
            result = check_segmented(run)
            if not result.satisfies_si:
                found = True
                assert result.failing_segment is not None
                assert not result.segment_results[-1].satisfies_si
                break
        assert found

    def test_stale_snapshot_crossing_boundary_caught(self):
        """A read reaching behind the segment barrier must be flagged."""
        found = False
        for seed in range(12):
            run = make_run(
                faults=FaultConfig(
                    stale_snapshot_prob=0.5, stale_snapshot_depth=30
                ),
                seed=seed, keys=6,
            )
            if not check_segmented(run).satisfies_si:
                found = True
                break
        assert found

    def test_checker_options_forwarded(self):
        run = make_run()
        result = check_segmented(run, prune=False)
        assert result.satisfies_si

    def test_faster_than_whole_history_checking(self):
        """The Section 6 motivation: segment cost beats whole-history cost
        on longer runs."""
        import time

        run = make_run(sessions=6, txns=50, keys=60, snapshot_every=40)
        seg_result = check_segmented(run)
        t0 = time.perf_counter()
        check_snapshot_isolation(run.full_history())
        full_seconds = time.perf_counter() - t0
        assert seg_result.satisfies_si
        assert seg_result.total_seconds < full_seconds * 1.2
