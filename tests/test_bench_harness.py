"""Tests for the measurement harness (repro.bench.harness)."""

import math
import time

from repro.bench.harness import Measurement, Sweep, measure, render_series, render_table


class TestMeasure:
    def test_returns_result_and_timing(self):
        m = measure(lambda x: x * 2, 21)
        assert m.result == 42
        assert m.seconds >= 0
        assert m.peak_mb >= 0

    def test_memory_tracks_allocations(self):
        def allocate():
            return [0] * 2_000_000

        m = measure(allocate)
        assert m.peak_mb > 5  # 2M ints ~ 16MB list payload

    def test_without_memory_tracing(self):
        m = measure(lambda: "ok", trace_memory=False)
        assert m.result == "ok"
        assert m.peak_mb == 0.0

    def test_kwargs_forwarded(self):
        m = measure(lambda a, b=0: a + b, 1, b=2)
        assert m.result == 3


class TestSweep:
    def test_records_points(self):
        sweep = Sweep("x")
        sweep.run(1, lambda: "a")
        sweep.run(2, lambda: "b")
        assert sweep.points[1].result == "a"
        assert not sweep.points[2].timed_out

    def test_budget_skips_later_points(self):
        sweep = Sweep("slow", budget_seconds=0.01)
        sweep.run(1, lambda: time.sleep(0.05))
        sweep.run(2, lambda: "never measured")
        assert not sweep.points[1].timed_out  # measured, over budget
        assert sweep.points[2].timed_out      # skipped

    def test_exception_counts_as_timeout(self):
        def boom():
            raise TimeoutError("budget")

        sweep = Sweep("err")
        sweep.run(1, boom)
        assert sweep.points[1].timed_out
        sweep.run(2, lambda: "skipped")
        assert sweep.points[2].timed_out

    def test_measurement_repr(self):
        assert "TIMEOUT" in repr(Measurement(float("nan"), 0, None, True))
        assert "0.5" in repr(Measurement(0.5, 1.0, None))


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_series_with_timeouts(self):
        sweep = Sweep("s", budget_seconds=0.001)
        sweep.run(1, lambda: time.sleep(0.01))
        sweep.run(2, lambda: None)
        text = render_series("x", [1, 2], [sweep])
        assert "timeout" in text

    def test_series_missing_point(self):
        sweep = Sweep("s")
        sweep.run(1, lambda: None)
        text = render_series("x", [1, 2], [sweep])
        assert "-" in text

    def test_series_memory_column(self):
        sweep = Sweep("s")
        sweep.run(1, lambda: [0] * 100_000)
        text = render_series("x", [1], [sweep], value="peak_mb")
        value = float(text.splitlines()[-1].split()[-1])
        assert not math.isnan(value)
