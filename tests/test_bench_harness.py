"""Tests for the measurement harness (repro.bench.harness)."""

import math
import time
import tracemalloc

import pytest

from repro.bench.harness import Measurement, Sweep, measure, render_series, render_table


class TestMeasure:
    def test_returns_result_and_timing(self):
        m = measure(lambda x: x * 2, 21)
        assert m.result == 42
        assert m.seconds >= 0
        assert m.peak_mb >= 0

    def test_raising_callable_does_not_leak_tracemalloc(self):
        """Regression: without try/finally a raising callable left
        tracemalloc running, nesting the next start() and inflating every
        later peak-memory number in a sweep."""
        assert not tracemalloc.is_tracing()
        with pytest.raises(RuntimeError):
            measure(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert not tracemalloc.is_tracing()

    def test_peaks_stay_calibrated_after_an_exception(self):
        """The observable symptom of the leak: a tiny allocation measured
        after a raising call reported the raiser's peak too."""
        def big_then_raise():
            _ballast = [0] * 2_000_000
            raise ValueError("after allocating ~16MB")

        with pytest.raises(ValueError):
            measure(big_then_raise)
        small = measure(lambda: [0] * 1000)
        assert small.peak_mb < 1.0

    def test_memory_tracks_allocations(self):
        def allocate():
            return [0] * 2_000_000

        m = measure(allocate)
        assert m.peak_mb > 5  # 2M ints ~ 16MB list payload

    def test_without_memory_tracing(self):
        m = measure(lambda: "ok", trace_memory=False)
        assert m.result == "ok"
        assert m.peak_mb == 0.0

    def test_kwargs_forwarded(self):
        m = measure(lambda a, b=0: a + b, 1, b=2)
        assert m.result == 3


class TestSweep:
    def test_records_points(self):
        sweep = Sweep("x")
        sweep.run(1, lambda: "a")
        sweep.run(2, lambda: "b")
        assert sweep.points[1].result == "a"
        assert not sweep.points[2].timed_out

    def test_budget_skips_later_points(self):
        sweep = Sweep("slow", budget_seconds=0.01)
        sweep.run(1, lambda: time.sleep(0.05))
        sweep.run(2, lambda: "never measured")
        assert not sweep.points[1].timed_out  # measured, over budget
        assert sweep.points[2].timed_out      # skipped

    def test_exception_counts_as_timeout(self):
        def boom():
            raise TimeoutError("budget")

        sweep = Sweep("err")
        sweep.run(1, boom)
        assert sweep.points[1].timed_out
        sweep.run(2, lambda: "skipped")
        assert sweep.points[2].timed_out

    def test_budget_exception_records_its_name(self):
        from repro.baselines.dbcop import DbcopBudgetExceeded

        def explode():
            raise DbcopBudgetExceeded("state budget")

        sweep = Sweep("err")
        sweep.run(1, explode)
        assert sweep.points[1].timed_out
        assert sweep.points[1].error == "DbcopBudgetExceeded"
        # Budget-skipped later points carry no error name of their own.
        sweep.run(2, lambda: "skipped")
        assert sweep.points[2].error is None

    @pytest.mark.parametrize("exc", [MemoryError, RecursionError])
    def test_resource_exhaustion_counts_as_timeout(self, exc):
        def exhaust():
            raise exc("out of budget")

        sweep = Sweep("err")
        sweep.run(1, exhaust)
        assert sweep.points[1].timed_out
        assert sweep.points[1].error == exc.__name__

    def test_programming_errors_propagate(self):
        """Regression: a bare ``except Exception`` recorded a TypeError in
        a checker as "budget exceeded" and killed the rest of the sweep."""
        def buggy():
            raise TypeError("not a budget problem")

        sweep = Sweep("err")
        with pytest.raises(TypeError):
            sweep.run(1, buggy)
        # The sweep is not poisoned: later points still measure.
        m = sweep.run(2, lambda: "fine")
        assert m is not None and not m.timed_out

    def test_measurement_repr(self):
        assert "TIMEOUT" in repr(Measurement(float("nan"), 0, None, True))
        assert "MemoryError" in repr(
            Measurement(float("nan"), 0, None, True, error="MemoryError")
        )
        assert "0.5" in repr(Measurement(0.5, 1.0, None))


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_series_with_timeouts(self):
        sweep = Sweep("s", budget_seconds=0.001)
        sweep.run(1, lambda: time.sleep(0.01))
        sweep.run(2, lambda: None)
        text = render_series("x", [1, 2], [sweep])
        assert "timeout" in text

    def test_series_missing_point(self):
        sweep = Sweep("s")
        sweep.run(1, lambda: None)
        text = render_series("x", [1, 2], [sweep])
        assert "-" in text

    def test_series_memory_column(self):
        sweep = Sweep("s")
        sweep.run(1, lambda: [0] * 100_000)
        text = render_series("x", [1], [sweep], value="peak_mb")
        value = float(text.splitlines()[-1].split()[-1])
        assert not math.isnan(value)
