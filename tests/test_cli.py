"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.histories.codec import dump_history

from _helpers import (
    long_fork_history,
    serializable_history,
    write_skew_history,
)


class TestCheck:
    def test_valid_history_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path)]) == 0
        assert "satisfies" in capsys.readouterr().out

    def test_violation_exit_one(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(long_fork_history(), str(path))
        assert main(["check", str(path)]) == 1
        assert "violates" in capsys.readouterr().out

    def test_explain_and_dot(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dot = tmp_path / "ce.dot"
        dump_history(long_fork_history(), str(path))
        assert main(["check", str(path), "--explain", "--dot", str(dot)]) == 1
        assert "anomaly class: long fork" in capsys.readouterr().out
        assert dot.read_text().startswith("digraph")

    def test_text_format(self, tmp_path):
        path = tmp_path / "h.txt"
        dump_history(serializable_history(), str(path), fmt="text")
        assert main(["check", str(path), "--format", "text"]) == 0

    def test_missing_file_exit_two(self, capsys):
        assert main(["check", "/nonexistent/h.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_prune_flag(self, tmp_path):
        path = tmp_path / "h.json"
        dump_history(long_fork_history(), str(path))
        assert main(["check", str(path), "--no-prune"]) == 1


class TestGenerate:
    def test_generates_valid_history_file(self, tmp_path, capsys):
        out = tmp_path / "gen.json"
        code = main([
            "generate", "--sessions", "3", "--txns", "4", "--ops", "3",
            "--keys", "6", "-o", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert len(data["sessions"]) == 3
        # The generated file round-trips through check.
        assert main(["check", str(out)]) == 0

    def test_generate_with_fault_profile(self, tmp_path):
        out = tmp_path / "bad.json"
        found = False
        for seed in range(10):
            main([
                "generate", "--sessions", "5", "--txns", "8", "--keys", "5",
                "--profile", "mariadb-galera-sim", "--seed", str(seed),
                "-o", str(out),
            ])
            if main(["check", str(out)]) == 1:
                found = True
                break
        assert found


class TestParallelFlags:
    def test_check_parallel_valid_history(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path), "--parallel", "2"]) == 0
        assert "satisfies" in capsys.readouterr().out

    def test_check_parallel_violation(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(long_fork_history(), str(path))
        assert main(["check", str(path), "--parallel", "2", "--explain"]) == 1
        out = capsys.readouterr().out
        assert "violates" in out
        assert "anomaly class: long fork" in out

    @pytest.mark.parametrize("value", ["0", "-3", "nope"])
    def test_check_parallel_rejects_bad_values(self, tmp_path, capsys, value):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        with pytest.raises(SystemExit):
            main(["check", str(path), "--parallel", value])
        err = capsys.readouterr().err
        assert "--parallel" in err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_audit_parallel_rejects_bad_values(self, capsys, value):
        with pytest.raises(SystemExit):
            main(["audit", "--profile", "mariadb-galera-sim",
                  "--parallel", value])
        assert "must be >= 1" in capsys.readouterr().err

    def test_check_parallel_stream_conflict(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path), "--stream", "--parallel", "2"]) == 2
        assert "batch pipeline" in capsys.readouterr().err

    def test_audit_parallel_finds_violation(self, capsys):
        code = main([
            "audit", "--profile", "mariadb-galera-sim", "--runs", "15",
            "--sessions", "5", "--txns", "8", "--keys", "5",
            "--parallel", "2",
        ])
        assert code == 1
        assert "violation found" in capsys.readouterr().out

    def test_audit_parallel_reports_same_seed_as_serial(self, capsys):
        args = ["audit", "--profile", "mariadb-galera-sim", "--runs", "15",
                "--sessions", "5", "--txns", "8", "--keys", "5"]
        main(args)
        serial_out = capsys.readouterr().out
        main(args + ["--parallel", "3"])
        parallel_out = capsys.readouterr().out
        serial_line = [l for l in serial_out.splitlines() if "run(s)" in l]
        parallel_line = [l for l in parallel_out.splitlines() if "run(s)" in l]
        assert serial_line == parallel_line


class TestFacadeFlags:
    """The façade-era interface: --isolation / --mode / --engine."""

    def _dump(self, tmp_path, history, name="h.json"):
        path = tmp_path / name
        dump_history(history, str(path))
        return str(path)

    def test_isolation_ser_engine_cobra(self, tmp_path, capsys):
        path = self._dump(tmp_path, write_skew_history())
        assert main(["check", path]) == 0                      # SI allows
        assert main(["check", path, "--isolation", "ser"]) == 1
        assert main(["check", path, "--isolation", "ser",
                     "--engine", "naive"]) == 1
        assert "violates serializability" in capsys.readouterr().out

    def test_isolation_causal(self, tmp_path, capsys):
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--isolation", "causal"]) == 0
        assert "causal" in capsys.readouterr().out

    def test_mode_online(self, tmp_path, capsys):
        path = self._dump(tmp_path, long_fork_history())
        assert main(["check", path, "--mode", "online"]) == 1
        assert "violates" in capsys.readouterr().out

    def test_mode_parallel_workers(self, tmp_path, capsys):
        path = self._dump(tmp_path, long_fork_history())
        assert main(["check", path, "--mode", "parallel",
                     "--workers", "2", "--explain"]) == 1
        out = capsys.readouterr().out
        assert "2 worker(s)" in out
        assert "anomaly class: long fork" in out

    def test_engine_alternatives_agree(self, tmp_path):
        path = self._dump(tmp_path, long_fork_history())
        for engine in ("polysi", "cobrasi", "dbcop", "naive"):
            assert main(["check", path, "--engine", engine]) == 1

    def test_unsupported_combo_exits_two(self, tmp_path, capsys):
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--engine", "cobra"]) == 2
        err = capsys.readouterr().err
        assert "nearest supported alternative" in err

    def test_unsupported_option_exits_two(self, tmp_path, capsys):
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--engine", "dbcop",
                     "--no-prune"]) == 2
        assert "dbcop" in capsys.readouterr().err

    def test_solve_every_is_ignored_outside_online(self, tmp_path, capsys):
        """Pre-2.0 scripts passing --solve-every without --stream keep
        working: the flag is ignored with a note, not a hard error."""
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--solve-every", "8"]) == 0
        captured = capsys.readouterr()
        assert "satisfies" in captured.out
        assert "--solve-every" in captured.err

    def test_stream_alias_maps_to_online(self, tmp_path, capsys):
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--stream"]) == 0
        captured = capsys.readouterr()
        assert "satisfies" in captured.out
        assert "deprecated" in captured.err

    def test_stream_conflicts_with_explicit_mode(self, tmp_path, capsys):
        path = self._dump(tmp_path, serializable_history())
        assert main(["check", path, "--stream",
                     "--mode", "parallel"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_engines_listing(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for name in ("polysi", "timestamp", "cobra", "cobrasi", "dbcop",
                     "naive"):
            assert name in out
        assert "si: batch, online, parallel, segmented" in out

    def test_engines_verbose_lists_options(self, capsys):
        assert main(["engines", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "options:" in out
        assert "max_states" in out


class TestExitCodeContract:
    """Every command honors the documented 0/1/2 contract, and all
    errors leave through the same stderr path."""

    def test_satisfied_is_zero(self, tmp_path):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path)]) == 0

    def test_violation_is_one(self, tmp_path):
        path = tmp_path / "h.json"
        dump_history(long_fork_history(), str(path))
        assert main(["check", str(path)]) == 1

    @pytest.mark.parametrize("argv,needle", [
        (["check", "/nonexistent/h.json"], "error:"),
        (["collect", "--adapter", "dbapi"], "requires --driver"),
        (["collect", "--adapter", "dbapi", "--driver", "x"],
         "requires --dsn"),
    ])
    def test_errors_are_two_on_stderr(self, capsys, argv, needle):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert needle in captured.err
        assert captured.err.startswith("error:") or "note:" in captured.err

    def test_stream_parallel_conflict_is_two(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path), "--stream",
                     "--parallel", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_explain_requires_evidence_mode(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        dump_history(serializable_history(), str(path))
        assert main(["check", str(path), "--mode", "online",
                     "--explain"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAuditAndCorpus:
    def test_audit_finds_violation(self, capsys):
        code = main([
            "audit", "--profile", "mariadb-galera-sim", "--runs", "15",
            "--sessions", "5", "--txns", "8", "--keys", "5",
        ])
        assert code == 1
        assert "violation found" in capsys.readouterr().out

    def test_corpus_full_detection(self, capsys):
        assert main(["corpus", "--count", "27"]) == 0
        assert "27/27" in capsys.readouterr().out

    def test_profiles_listed(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "mariadb-galera-sim" in out
        assert "dgraph-sim" in out


class TestEnginesJson:
    """`repro engines --json`: the machine-readable registry listing,
    drift-guarded against the live registry."""

    def _payload(self, capsys):
        assert main(["engines", "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_json_parses_and_names_match_registry(self, capsys):
        from repro.api import engine_names

        payload = self._payload(capsys)
        assert [e["name"] for e in payload["engines"]] == engine_names()

    def test_json_combos_match_supported_combos(self, capsys):
        """Every (isolation, mode, engine) triple in the JSON listing is
        exactly the registry's supported_combos() — the CLI cannot
        drift from the facade."""
        from repro.api import supported_combos

        payload = self._payload(capsys)
        listed = {
            (combo["isolation"], combo["mode"], engine["name"])
            for engine in payload["engines"]
            for combo in engine["combos"]
        }
        assert listed == set(supported_combos())

    def test_json_lists_option_names(self, capsys):
        payload = self._payload(capsys)
        by_name = {e["name"]: e for e in payload["engines"]}
        assert "workers" in by_name["polysi"]["options"]

    def test_text_listing_unchanged_by_flag_addition(self, capsys):
        """The human listing still renders without --json."""
        assert main(["engines"]) == 0
        assert "polysi" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_rejects_bad_queue_depth(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--queue-depth", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_collect_sink_requires_valid_url(self, capsys):
        assert main(["collect", "--sessions", "2", "--txns", "2",
                     "--sink", "gopher://x:1"]) == 2
        assert "bad sink URL" in capsys.readouterr().err

    def test_collect_sink_unreachable_daemon_is_error(self, capsys):
        # Port 1 on localhost is never listening.
        assert main(["collect", "--sessions", "2", "--txns", "2",
                     "--sink", "http://127.0.0.1:1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_collect_pushes_to_live_daemon(self, capsys):
        from repro.service import ReproService, ServiceConfig, ServiceClient

        service = ReproService(ServiceConfig(http_port=0, tcp_port=None))
        handle = service.start_in_thread()
        try:
            code = main(["collect", "--sessions", "3", "--txns", "3",
                         "--seed", "2",
                         "--sink", f"http://127.0.0.1:{handle.http_port}",
                         "--tenant", "cli"])
            assert code == 0
            out = capsys.readouterr().out
            assert "pushed" in out and "tenant 'cli'" in out
            verdicts = handle.drain()
            assert verdicts["cli"]["report"]["verdict"] == "satisfied"
        finally:
            handle.stop()
