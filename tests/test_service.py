"""Checking-as-a-service daemon (repro.service).

End-to-end coverage of the ingestion daemon: both wire paths (HTTP 429
backpressure, TCP credit backpressure), the per-tenant verdict API, the
multi-tenant differential against the one-shot ``repro.check`` façade
(including under forced window eviction and injected anomalies), the
observability surfaces (Prometheus ``/metrics``, live ``/trace``), and
drain semantics.  Every daemon binds ephemeral ports, so the suite is
parallel-safe.
"""

import threading

import pytest

import repro
from repro.collect import Collector, FaultyAdapter, SQLiteAdapter
from repro.core.history import HistoryBuilder, R, W
from repro.obs import validate_trace
from repro.service import (
    ReproService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TenantError,
)
from repro.service.client import parse_sink
from repro.workloads.generator import WorkloadParams, generate_workload

SMALL = WorkloadParams(
    sessions=4,
    txns_per_session=6,
    ops_per_txn=4,
    keys=12,
    read_proportion=0.5,
    distribution="uniform",
)


def collect_run(seed=0, inject=None, params=SMALL):
    """One SQLite collection (optionally anomaly-injected)."""
    adapter = SQLiteAdapter()
    if inject:
        adapter = FaultyAdapter(adapter, profile=inject, seed=seed)
    spec = generate_workload(params, seed=seed)
    try:
        return Collector(adapter).run(spec)
    finally:
        adapter.close()


@pytest.fixture
def service():
    """Factory fixture: start daemons on ephemeral ports; stop them all
    at teardown."""
    handles = []

    def start(**kwargs):
        kwargs.setdefault("http_port", 0)
        kwargs.setdefault("tcp_port", 0)
        svc = ReproService(ServiceConfig(**kwargs))
        handle = svc.start_in_thread()
        handles.append(handle)
        client = ServiceClient("127.0.0.1", handle.http_port,
                               tcp_port=handle.tcp_port)
        return svc, handle, client

    yield start
    for handle in handles:
        handle.stop()


class TestEndpoints:
    def test_health_and_ready(self, service):
        _, _, client = service()
        assert client.healthz() is True
        ready = client.readyz()
        assert ready == {"ready": True, "draining": False}

    def test_unknown_tenant_is_404(self, service):
        _, _, client = service()
        with pytest.raises(ServiceError, match="404"):
            client.verdict("nope")

    def test_unknown_route_is_404(self, service):
        _, _, client = service()
        status, _ = client._request_json("GET", "/not-a-route")
        assert status == 404

    def test_bad_tenant_name_rejected(self, service):
        _, _, client = service()
        with pytest.raises(ServiceError, match="bad tenant name"):
            client.push_events("a" * 65, [(0, (W("x", 1),), "committed")])

    def test_malformed_event_line_rejected(self, service):
        _, _, client = service()
        status, data = client._request_json(
            "POST", "/ingest/t", b'{"session": 0, "bogus": 1}\n')
        assert status == 400
        assert "bogus" in data["error"]


class TestHttpIngestion:
    def test_clean_run_matches_offline_verdict(self, service):
        _, handle, client = service()
        run = collect_run(seed=1)
        stats = client.push_events("clean", run.iter_events(),
                                   sessions=SMALL.sessions)
        assert stats.sent == stats.accepted == len(run.history)
        verdicts = handle.drain()
        payload = verdicts["clean"]
        offline = repro.check(run.history)
        assert payload["final"] is True
        assert payload["events"] == len(run.history)
        assert payload["report"]["verdict"] == offline.verdict == "satisfied"
        assert 0.0 <= payload["timestamped_fraction"] <= 1.0

    def test_backpressure_rejects_are_counted_not_dropped(self, service):
        """A tiny queue forces 429s; the client resends and the verdict
        still matches the offline check — zero loss under backpressure."""
        _, handle, client = service(queue_depth=2)
        run = collect_run(seed=2)
        stats = client.push_events("bp", run.iter_events(),
                                   sessions=SMALL.sessions, batch=16)
        assert stats.rejected_retries > 0
        assert stats.accepted == stats.sent == len(run.history)
        verdicts = handle.drain()
        assert verdicts["bp"]["events"] == len(run.history)
        assert verdicts["bp"]["rejected"] > 0
        assert (verdicts["bp"]["report"]["verdict"]
                == repro.check(run.history).verdict)

    def test_draining_daemon_refuses_ingest(self, service):
        _, handle, client = service()
        client.push_events("t", collect_run(seed=1).iter_events(),
                           sessions=SMALL.sessions)
        handle.drain()
        assert client.readyz() == {"ready": False, "draining": True}
        with pytest.raises(ServiceError, match="503|draining"):
            client.push_events("t2", [(0, (W("x", 1),), "committed")])


class TestTcpIngestion:
    def test_tcp_matches_offline_verdict(self, service):
        _, handle, client = service()
        run = collect_run(seed=3, inject="stale-reads")
        stats = client.push_events_tcp("tcp", run.iter_events(),
                                       sessions=SMALL.sessions)
        assert stats.accepted == stats.sent == len(run.history)
        verdicts = handle.drain()
        offline = repro.check(run.history)
        assert verdicts["tcp"]["report"]["verdict"] == offline.verdict
        assert offline.verdict == "violated"

    def test_credit_protocol_stalls_instead_of_dropping(self, service):
        _, handle, client = service(queue_depth=2, credit_cap=2)
        run = collect_run(seed=1)
        stats = client.push_events_tcp("credit", run.iter_events(),
                                       sessions=SMALL.sessions)
        assert stats.credit_waits > 0
        assert stats.accepted == stats.sent == len(run.history)
        verdicts = handle.drain()
        assert verdicts["credit"]["report"]["verdict"] == "satisfied"

    def test_bad_hello_is_refused(self, service):
        svc, _, client = service()
        import json
        import socket

        with socket.create_connection(("127.0.0.1", svc.tcp_port),
                                      timeout=10) as sock:
            sock.sendall(b'{"hello": "repro-events/999", "tenant": "x"}\n')
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert "repro-events/1" in reply["error"]


class TestMultiTenantDifferential:
    def test_interleaved_tenants_match_offline_check(self, service):
        """The acceptance differential: concurrent tenants — two clean,
        one anomaly-injected — ingested from interleaved threads reach
        exactly the verdict and classification of the one-shot façade
        check on each tenant's history."""
        _, handle, client = service(queue_depth=8)
        runs = {
            "clean-1": collect_run(seed=1),
            "clean-2": collect_run(seed=2),
            "faulty": collect_run(seed=3, inject="lost-update"),
        }
        errors = []

        def push(name, run):
            try:
                pusher = (client.push_events if name != "clean-2"
                          else client.push_events_tcp)
                stats = pusher(name, run.iter_events(),
                               sessions=SMALL.sessions)
                assert stats.accepted == len(run.history)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=push, args=item)
                   for item in runs.items()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        verdicts = handle.drain()
        for name, run in runs.items():
            offline = repro.check(run.history)
            assert verdicts[name]["report"]["verdict"] == offline.verdict, name
            if not offline.ok:
                assert (verdicts[name]["classification"]
                        == offline.counterexample.classification), name

    def test_forced_eviction_same_verdicts(self, service):
        """A tiny global budget forces window eviction; verdicts still
        match the offline check for clean and injected tenants alike."""
        _, handle, client = service(max_live_total=8, min_live_share=4)
        runs = {
            "clean": collect_run(seed=4),
            "faulty": collect_run(seed=4, inject="stale-reads"),
        }
        for name, run in runs.items():
            client.push_events(name, run.iter_events(),
                               sessions=SMALL.sessions)
        verdicts = handle.drain()
        evicted = sum(
            v["report"]["stats"].get("window", {}).get("evicted", 0)
            for v in verdicts.values()
        )
        assert evicted > 0, "budget was meant to force eviction"
        for name, run in runs.items():
            assert (verdicts[name]["report"]["verdict"]
                    == repro.check(run.history).verdict), name

    def test_global_budget_rebalances_across_tenants(self, service):
        svc, _, client = service(max_live_total=64, min_live_share=4)
        for name in ("a", "b", "c", "d"):
            client.push_events(name, [(0, (W(f"{name}-x", 1),), "committed")],
                               sessions=2)
        tenants = svc.router.tenants()
        assert len(tenants) == 4
        assert all(t.window.max_live == 64 // 4 for t in tenants)

    def test_undeclared_session_latches_error_verdict(self, service):
        """Under a declared universe, an off-universe session is an
        ingest error: the verdict latches violated/ingest-error instead
        of unsoundly checking a partial stream."""
        import time

        _, handle, client = service()
        client.push_events("t", [(7, (W("x", 1),), "committed")], sessions=2)
        deadline = time.time() + 5
        while time.time() < deadline:
            payload = client.verdict("t")
            if payload["report"]["decided_by"] == "ingest-error":
                break
            time.sleep(0.02)
        assert payload["report"]["decided_by"] == "ingest-error"
        assert payload["report"]["verdict"] == "violated"

    def test_session_universe_cannot_widen(self, service):
        svc, _, _ = service()
        svc.router.get_or_create("t", range(2))
        with pytest.raises(TenantError, match="cannot widen"):
            svc.router.get_or_create("t", range(4))


class TestObservability:
    def test_metrics_endpoint_is_prometheus_text(self, service):
        _, _, client = service()
        run = collect_run(seed=1)
        client.push_events("alpha", run.iter_events(),
                           sessions=SMALL.sessions)
        text = client.metrics_text()
        assert "# TYPE repro_service_http_requests counter" in text
        assert "repro_service_events_ingested" in text
        # Per-tenant series carry a tenant label.
        assert 'tenant="alpha"' in text

    def test_trace_endpoint_serves_live_chrome_trace(self, service):
        import time

        _, _, client = service()
        run = collect_run(seed=1)
        client.push_events("traced", run.iter_events(),
                           sessions=SMALL.sessions)
        deadline = time.time() + 5
        while time.time() < deadline:
            if client.verdict("traced")["events"] == len(run.history):
                break
            time.sleep(0.02)
        document = client.trace("traced")
        assert document["traceEvents"], "expected live spans"
        payload = document["otherData"]["repro_trace"]
        validate_trace(payload)
        names = {span["name"] for span in payload["spans"]}
        assert "event" in names

    def test_stats_endpoint(self, service):
        _, _, client = service()
        client.push_events("s", [(0, (W("x", 1),), "committed")], sessions=2)
        stats = client.stats()
        assert stats["draining"] is False
        assert stats["totals"]["tenants"] == 1
        assert [t["tenant"] for t in stats["tenants"]] == ["s"]
        assert client.tenants() == ["s"]


class TestDrain:
    def test_drain_is_idempotent(self, service):
        _, handle, client = service()
        client.push_events("t", collect_run(seed=1).iter_events(),
                           sessions=SMALL.sessions)
        first = handle.drain()
        second = client.drain()
        assert first["t"]["events"] == second["t"]["events"]
        assert second["t"]["final"] is True

    def test_verdicts_remain_queryable_after_drain(self, service):
        _, handle, client = service()
        client.push_events("t", collect_run(seed=1).iter_events(),
                           sessions=SMALL.sessions)
        handle.drain()
        payload = client.verdict("t")
        assert payload["final"] is True
        assert client.verdicts()["t"]["final"] is True


class TestSinkUrls:
    def test_parse_sink(self):
        assert parse_sink("http://localhost:8790") == \
            ("http", "localhost", 8790)
        assert parse_sink("tcp://10.0.0.1:9000") == ("tcp", "10.0.0.1", 9000)

    @pytest.mark.parametrize("url", [
        "ftp://x:1", "http://nope", "localhost:8790", "tcp://:x",
    ])
    def test_bad_sink_urls(self, url):
        with pytest.raises(ServiceError, match="bad sink URL"):
            parse_sink(url)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"queue_depth": 0},
        {"max_live_total": 1},
        {"min_live_share": 1},
        {"solve_every": 0},
        {"credit_cap": 0},
        {"retain_events": -1},
        {"max_line_bytes": 100},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestHardening:
    """Regressions for the malformed-input / drain-race review findings:
    nothing a client sends may kill a tenant worker, wedge drain, or
    slip an acknowledged-but-unchecked event behind a drain."""

    def test_unhashable_op_key_is_a_protocol_error_not_a_wedge(self, service):
        """A JSON-array op key used to raise TypeError inside the worker
        (killing it, deadlocking drain); now the codec rejects the line
        and the daemon keeps serving."""
        _, handle, client = service()
        status, data = client._request_json(
            "POST", "/ingest/t",
            b'{"session": 0, "status": "committed", '
            b'"ops": [["w", ["k"], 1]]}\n')
        assert status == 400
        assert "JSON scalar" in data["error"]
        client.push_events("t", [(0, (W("x", 1),), "committed")], sessions=2)
        verdicts = handle.drain()  # must not hang
        assert verdicts["t"]["final"] is True
        assert verdicts["t"]["events"] == 1

    def test_worker_crash_latches_error_instead_of_hanging_drain(self,
                                                                 service):
        """If the checker ever raises something other than ValueError,
        the worker latches an error verdict and drain still returns."""
        import time

        svc, handle, client = service()
        client.push_events("t", [(0, (W("x", 1),), "committed")], sessions=2)
        tenant = svc.router.get("t")

        def boom(*args, **kwargs):
            raise TypeError("unhashable type: 'list'")

        tenant._checker.add = boom
        client.push_events("t", [(1, (W("y", 1),), "committed")])
        deadline = time.time() + 5
        while time.time() < deadline:
            if client.verdict("t")["report"]["decided_by"] == "ingest-error":
                break
            time.sleep(0.02)
        assert client.verdict("t")["report"]["decided_by"] == "ingest-error"
        verdicts = handle.drain()  # must not hang on the poisoned tenant
        assert verdicts["t"]["report"]["verdict"] == "violated"

    def test_offer_after_drain_flag_raises(self, service):
        """The drain flag flips before the finish sentinel is enqueued,
        so no event can be acknowledged and then skipped (S13)."""
        svc, _, _ = service()
        tenant = svc.router.get_or_create("t", range(2))
        tenant.draining = True
        with pytest.raises(TenantError, match="drained"):
            tenant.offer((0, (W("x", 1),), "committed"))

    def test_oversized_http_line_is_a_400(self, service):
        _, _, client = service(max_line_bytes=2048)
        status, data = client._request_json(
            "GET", "/healthz?pad=" + "x" * 8192)
        assert status == 400
        assert "too long" in data["error"]

    def test_oversized_tcp_line_is_a_protocol_error(self, service):
        import json
        import socket

        svc, _, _ = service(max_line_bytes=2048)
        with socket.create_connection(("127.0.0.1", svc.tcp_port),
                                      timeout=10) as sock:
            sock.sendall(b"x" * 8192 + b"\n")
            reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False
        assert "exceeds" in reply["error"]

    def test_tcp_end_reply_rejected_is_per_connection(self, service):
        """A collector's end reply must not leak other producers'
        backpressure: tenant-wide rejects stay out of it."""
        import json
        import socket

        svc, _, client = service(queue_depth=2)
        run = collect_run(seed=2)
        stats = client.push_events("shared", run.iter_events(),
                                   sessions=SMALL.sessions, batch=16)
        assert stats.rejected_retries > 0  # tenant-wide counter is hot
        with socket.create_connection(("127.0.0.1", svc.tcp_port),
                                      timeout=10) as sock:
            rfile = sock.makefile("rb")
            sock.sendall(b'{"hello": "repro-events/1", '
                         b'"tenant": "shared"}\n')
            assert json.loads(rfile.readline())["ok"] is True
            sock.sendall(b'{"op": "end"}\n')
            reply = json.loads(rfile.readline())
        assert reply == {"ok": True, "accepted": 0, "rejected": 0}

    def test_sessions_for_existing_unwindowed_tenant_is_an_error(self,
                                                                 service):
        """Windowing cannot be bolted on after events were absorbed
        unwindowed — the declaration must error, not silently no-op."""
        svc, _, client = service()
        client.push_events("t", [(0, (W("x", 1),), "committed")])
        with pytest.raises(TenantError, match="unwindowed"):
            svc.router.get_or_create("t", range(2))
        status, data = client._request_json(
            "POST", "/ingest/t?sessions=2",
            b'{"session": 0, "status": "committed", '
            b'"ops": [["w", "x", 2]]}\n')
        assert status == 400
        assert "unwindowed" in data["error"]


def test_retention_truncation_is_flagged(service):
    """When the retained event log overflows, the payload says so
    honestly instead of silently re-checking a partial history."""
    _, handle, client = service(retain_events=4)
    run = collect_run(seed=1)
    client.push_events("t", run.iter_events(), sessions=SMALL.sessions)
    verdicts = handle.drain()
    assert verdicts["t"]["retention_truncated"] is True


def test_handmade_anomaly_over_the_wire(service):
    """A hand-built lost-update history pushed over the wire violates,
    with the same classification as the offline facade check."""
    b = HistoryBuilder()
    b.txn(0, [W("x", 1)])
    b.txn(1, [R("x", 1), W("x", 2)])
    b.txn(2, [R("x", 1), W("x", 3)])
    history = b.build()
    from repro.histories.codec import history_to_events

    _, handle, client = service()
    client.push_events("hand", history_to_events(history))
    verdicts = handle.drain()
    offline = repro.check(history)
    assert verdicts["hand"]["report"]["verdict"] == offline.verdict
    assert offline.verdict == "violated"
    assert (verdicts["hand"]["classification"]
            == offline.counterexample.classification)
