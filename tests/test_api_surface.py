"""API-surface snapshot: the façade contract may not drift silently.

These snapshots are the public contract of ``repro.api``.  If a test
here fails, either the change was unintentional (fix the code) or it is
a deliberate API change — then update the snapshot *and* record the
change in CHANGES.md in the same commit, because downstream users key
off these names.
"""

import repro
import repro.api as api

SNAPSHOT_POLICY = (
    "API surface drifted: update this snapshot AND describe the change "
    "in CHANGES.md"
)

#: Everything repro.api exports.
EXPECTED_API_EXPORTS = sorted([
    "Checker",
    "CheckOptions",
    "Report",
    "EngineSpec",
    "CheckerError",
    "UnknownEngineError",
    "UnsupportedComboError",
    "UnsupportedOptionError",
    "MissingTimestampsError",
    "ISOLATION_LEVELS",
    "MODES",
    "check",
    "adapt_result",
    "default_engine",
    "describe_engines",
    "engine_names",
    "get_engine",
    "list_engines",
    "register_engine",
    "supported_combos",
])

#: Registered engine names, in registration order.
EXPECTED_ENGINES = ["polysi", "timestamp", "cobra", "cobrasi", "dbcop",
                    "naive"]

#: Every registered (isolation, mode, engine) capability triple.
EXPECTED_COMBOS = sorted([
    ("si", "batch", "polysi"),
    ("si", "online", "polysi"),
    ("si", "parallel", "polysi"),
    ("si", "segmented", "polysi"),
    ("causal", "batch", "polysi"),
    ("ra", "batch", "polysi"),
    ("listappend", "batch", "polysi"),
    ("si", "batch", "timestamp"),
    ("ser", "batch", "cobra"),
    ("si", "batch", "cobrasi"),
    ("si", "batch", "dbcop"),
    ("ser", "batch", "dbcop"),
    ("si", "batch", "naive"),
    ("ser", "batch", "naive"),
])

#: The façade names re-exported at top level.
EXPECTED_TOP_LEVEL_FACADE = ["CheckOptions", "Checker", "Report", "api",
                             "check"]


def test_api_exports_snapshot():
    assert sorted(api.__all__) == EXPECTED_API_EXPORTS, SNAPSHOT_POLICY


def test_registered_engine_names_snapshot():
    assert api.engine_names() == EXPECTED_ENGINES, SNAPSHOT_POLICY


def test_registered_combos_snapshot():
    assert sorted(api.supported_combos()) == EXPECTED_COMBOS, SNAPSHOT_POLICY


def test_top_level_facade_exports():
    missing = [name for name in EXPECTED_TOP_LEVEL_FACADE
               if name not in repro.__all__]
    assert missing == [], SNAPSHOT_POLICY


def test_version_is_2x():
    assert repro.__version__.startswith("2."), (
        "the façade redesign shipped as 2.0.0; do not regress the major"
    )


def test_every_export_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_option_schemas_name_real_fields():
    """Every option an engine registers is a CheckOptions field, and
    every spec documents at least one supported combo."""
    fields = api.CheckOptions.field_names()
    for spec in api.list_engines():
        assert spec.combos, spec.name
        assert spec.options <= fields, spec.name
