"""Tests for the parallel sharded checking engine (repro.parallel).

The load-bearing guarantee is *serial-identical verdicts*: for every
worker count, :class:`ParallelChecker` must agree with
:class:`PolySIChecker` on the verdict and the anomaly list — enforced
differentially over the random-history corpus (violating and satisfying
alike).  The rest covers the machinery those verdicts rest on:
component decomposition, subgraph extraction, picklable shard payloads,
shared-closure partitioned pruning, and the deterministic merge.
"""

import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.checker import PolySIChecker
from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import build_polygraph
from repro.core.pruning import prune_constraints
from repro.interpret import interpret_violation
from repro.parallel import (
    ParallelChecker,
    ShardPlanner,
    ShardResult,
    check_snapshot_isolation_parallel,
    merge_results,
    prune_constraints_parallel,
)
from repro.parallel.planner import component_payload, rebuild_component

from _helpers import build, long_fork_history, serializable_history


def islands_history(groups=3, violating=(), surviving_constraint=True):
    """``groups`` disjoint-key, disjoint-session islands.

    Each island is independently checkable: groups listed in
    ``violating`` get a lost-update anomaly; the rest are valid and
    (with ``surviving_constraint``) keep one blind write-write pair the
    solver must order, so the island genuinely reaches encode+solve.
    """
    b = HistoryBuilder()
    for g in range(groups):
        key, s = f"k{g}", 3 * g
        if g in violating:
            b.txn(s, [W(key, (g, 4))])
            b.txn(s + 1, [R(key, (g, 4)), W(key, (g, 5))])
            b.txn(s + 2, [R(key, (g, 4)), W(key, (g, 13))])
        elif surviving_constraint:
            b.txn(s, [W(key, (g, 1))])
            b.txn(s + 1, [W(key, (g, 2))])
            b.txn(s + 2, [R(key, (g, 2))])
        else:
            # Single writer per key: no write-write pair, no constraint.
            b.txn(s, [W(key, (g, 1))])
            b.txn(s + 1, [R(key, (g, 1))])
    return b.build()


def corpus(count, seed=0):
    """Mixed valid/violating random histories (≈half violate SI)."""
    histories = []
    for i in range(count):
        rng = random.Random(seed * 10_000 + i)
        histories.append(random_history_for(rng, i))
    return histories


def random_history_for(rng, i):
    from repro.workloads.random_histories import random_history

    return random_history(
        rng,
        sessions=2 + i % 3,
        txns_per_session=2 + i % 2,
        max_ops=4,
        keys=1 + i % 4,
        abort_prob=0.15 if i % 5 == 0 else 0.0,
    )


class TestComponentDecomposition:
    def test_disjoint_islands_are_components(self):
        graph, anomalies = build_polygraph(islands_history(4))
        assert not anomalies
        components = graph.weakly_connected_components()
        assert len(components) == 4
        # Each component is one island's three transactions.
        assert [len(c) for c in components] == [3, 3, 3, 3]
        assert components[0] == [0, 1, 2]

    def test_shared_key_merges_components(self):
        h = build(
            [W("x", 1), W("shared", 10)],
            [W("y", 2), W("shared", 11)],
        )
        graph, _ = build_polygraph(h)
        assert len(graph.weakly_connected_components()) == 1

    def test_init_vertex_does_not_merge_components(self):
        # Both sessions read key z's initial state: WR edges from the
        # virtual init vertex must not glue the islands together.
        h = build(
            [R("z", None), W("a", 1)],
            [R("z", None), W("b", 1)],
        )
        graph, _ = build_polygraph(h)
        assert graph.init_vertex is not None
        components = graph.weakly_connected_components()
        assert len(components) == 2
        assert graph.init_vertex not in [v for c in components for v in c]

    def test_init_rw_edge_does_merge(self):
        # A real RW edge (reader of initial z -> writer of z) connects
        # transactions even though it was derived via init.
        h = build([R("z", None)], [W("z", 9)])
        graph, _ = build_polygraph(h)
        assert len(graph.weakly_connected_components()) == 1

    def test_subgraph_fragments_check_like_the_island(self):
        h = islands_history(3, violating=(1,))
        graph, _ = build_polygraph(h)
        checker = PolySIChecker()
        verdicts = []
        for comp in graph.weakly_connected_components():
            sub, old = graph.subgraph(comp)
            assert [sub.vertex_name(i) for i in range(len(old))] == [
                graph.vertex_name(v) for v in old
            ]
            verdicts.append(checker.check_polygraph(sub).satisfies_si)
        assert verdicts == [True, False, True]

    def test_subgraph_keeps_init_edges(self):
        h = build(
            [R("z", None), W("a", 1)],
            [W("z", 9)],
        )
        graph, _ = build_polygraph(h)
        comp = graph.weakly_connected_components()[0]
        sub, old = graph.subgraph(comp)
        assert sub.init_vertex is not None
        assert old[sub.init_vertex] == graph.init_vertex
        assert any(u == sub.init_vertex for u, _v, _l, _k in sub.known_edges)


class TestShardPlanner:
    def test_one_shard_per_constrained_component(self):
        graph, _ = build_polygraph(islands_history(3))
        plan = ShardPlanner().plan_polygraph(graph)
        assert plan.strategy == "components"
        assert len(plan.shards) == 3
        assert plan.skipped_components == 0
        assert [s.index for s in plan.shards] == [0, 1, 2]

    def test_pure_components_stay_in_parent(self):
        # Islands without write-write pairs have no constraints: they
        # must be skipped, not sharded.
        graph, _ = build_polygraph(
            islands_history(3, surviving_constraint=False)
        )
        plan = ShardPlanner().plan_polygraph(graph)
        assert not plan.shards
        assert plan.skipped_components == 3
        assert sorted(plan.pure_vertices) == list(range(6))

    def test_payloads_are_picklable_and_rebuildable(self):
        graph, _ = build_polygraph(islands_history(2, violating=(0,)))
        plan = ShardPlanner().plan_polygraph(graph)
        for shard in plan.shards:
            rebuilt = rebuild_component(pickle.loads(pickle.dumps(shard.payload)))
            assert rebuilt.num_vertices == len(shard.vertex_map)
            assert rebuilt.num_constraints == shard.cost

    def test_packing_bounds_shard_count(self):
        graph, _ = build_polygraph(islands_history(6))
        plan = ShardPlanner(max_shards=2).plan_polygraph(graph)
        assert len(plan.shards) == 2
        total = sum(s.cost for s in plan.shards)
        assert total == graph.num_constraints
        # Deterministic: replanning produces the same grouping.
        again = ShardPlanner(max_shards=2).plan_polygraph(graph)
        assert [s.vertex_map for s in again.shards] == [
            s.vertex_map for s in plan.shards
        ]

    def test_component_payload_roundtrip(self):
        graph, _ = build_polygraph(islands_history(1))
        sub, _old = graph.subgraph(graph.weakly_connected_components()[0])
        rebuilt = rebuild_component(component_payload(sub))
        assert rebuilt.known_edges == sub.known_edges
        assert rebuilt.num_constraints == sub.num_constraints


class TestParallelDifferential:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_on_random_corpus(self, workers):
        serial = PolySIChecker()
        with ParallelChecker(workers, oversubscribe=True) as parallel:
            for history in corpus(24, seed=workers):
                want = serial.check(history)
                got = parallel.check(history)
                assert got.satisfies_si == want.satisfies_si, history
                assert (
                    [a.axiom for a in got.anomalies]
                    == [a.axiom for a in want.anomalies]
                )

    @pytest.mark.parametrize("strategy", ["components", "constraints"])
    def test_forced_strategies_agree(self, strategy):
        serial = PolySIChecker()
        with ParallelChecker(2, strategy=strategy,
                             oversubscribe=True) as parallel:
            for history in corpus(10, seed=99):
                assert (
                    parallel.check(history).satisfies_si
                    == serial.check(history).satisfies_si
                )

    def test_multi_component_violation_maps_to_parent_ids(self):
        history = islands_history(3, violating=(2,))
        with ParallelChecker(2, oversubscribe=True) as parallel:
            result = parallel.check(history)
        assert not result.satisfies_si
        assert result.cycle
        vertices = {v for e in result.cycle for v in e[:2]}
        # Island 2 owns transactions 6..8 of the parent history.
        assert vertices <= {6, 7, 8}
        assert result.stats["strategy"] == "components"
        # The merged result interprets like a serial one.
        assert interpret_violation(result).classification

    def test_packed_mixed_shards_run_without_history(self):
        # Even islands keep an unresolvable blind write-write pair; odd
        # islands prune to zero constraints.  Packed together into few
        # shards, a worker's fragment turns *mixed* after pruning, so it
        # re-subgraphs a history-free rebuilt graph — which must work
        # (regression: vertex_name used to dereference the absent
        # history).
        b = HistoryBuilder()
        for g in range(6):
            key, s = f"k{g}", 3 * g
            if g % 2:
                b.txn(s, [W(key, (g, 1))])
                b.txn(s + 1, [R(key, (g, 1)), W(key, (g, 2))])
                b.txn(s + 2, [R(key, (g, 2)), W(key, (g, 3))])
            else:
                b.txn(s, [W(key, (g, 1))])
                b.txn(s + 1, [W(key, (g, 2))])
        history = b.build()
        with ParallelChecker(2, oversubscribe=True, max_shards=2) as pc:
            result = pc.check(history)
        assert result.satisfies_si
        assert result.stats["shards"] == 2

    def test_convenience_wrapper(self):
        assert check_snapshot_isolation_parallel(
            serializable_history(), workers=2, oversubscribe=True
        ).satisfies_si
        assert not check_snapshot_isolation_parallel(
            long_fork_history(), workers=2, oversubscribe=True
        ).satisfies_si

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ParallelChecker(0)
        with pytest.raises(ValueError):
            ParallelChecker(2, strategy="magic")


class TestConstraintPartition:
    @staticmethod
    def contended_history(writers=9):
        """One component, many blind writers: lots of constraints."""
        b = HistoryBuilder()
        b.txn(0, [W("x", 0), W("y", 0)])
        for i in range(1, writers):
            b.txn(i, [R("x", 0) if i % 2 else R("y", 0),
                      W("x", i), W("y", i)])
        return b.build()

    def test_serial_identical_pruning(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.partition.MIN_PARALLEL_CONSTRAINTS", 1
        )
        history = self.contended_history()
        serial_graph, _ = build_polygraph(history)
        parallel_graph = serial_graph.copy()
        want = prune_constraints(serial_graph)
        with ProcessPoolExecutor(max_workers=2) as pool:
            got = prune_constraints_parallel(parallel_graph, pool, 2)
        assert got.as_dict() == want.as_dict()
        assert parallel_graph.known_edges == serial_graph.known_edges
        assert len(parallel_graph.constraints) == len(serial_graph.constraints)

    def test_serial_identical_violation(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.partition.MIN_PARALLEL_CONSTRAINTS", 1
        )
        history = build(
            [W("x", 1), W("y", 1)],
            [R("x", 1), R("y", 2), W("x", 2)],
            [R("y", 1), R("x", 2), W("y", 2)],
        )
        serial_graph, _ = build_polygraph(history)
        parallel_graph = serial_graph.copy()
        want = prune_constraints(serial_graph)
        with ProcessPoolExecutor(max_workers=2) as pool:
            got = prune_constraints_parallel(parallel_graph, pool, 2)
        assert want.ok == got.ok
        if not want.ok:
            assert got.violation_cycle == want.violation_cycle


class TestMergeDeterminism:
    @staticmethod
    def shard(index, ok=True, decided_by="solving", cycle=None):
        out = ShardResult(index)
        out.satisfies_si = ok
        out.decided_by = decided_by
        out.cycle = cycle
        out.timings = {"solve": 0.25}
        return out

    def test_lowest_index_violation_wins_regardless_of_order(self):
        results = [
            self.shard(2, ok=False, decided_by="solving",
                       cycle=[(0, 1, "WW", "k")]),
            self.shard(0),
            self.shard(1, ok=False, decided_by="pruning",
                       cycle=[(1, 0, "WW", "k")]),
        ]
        merged = merge_results(
            results,
            vertex_maps={1: [10, 11], 2: [20, 21]},
        )
        assert not merged.satisfies_si
        assert merged.decided_by == "pruning"
        assert merged.cycle == [(11, 10, "WW", "k")]
        # Shuffled input, same fold.
        again = merge_results(
            list(reversed(results)),
            vertex_maps={1: [10, 11], 2: [20, 21]},
        )
        assert again.cycle == merged.cycle

    def test_satisfying_merge_sums_timings(self):
        merged = merge_results([self.shard(0), self.shard(1)])
        assert merged.satisfies_si
        assert merged.decided_by == "solving"
        assert merged.timings["solve"] == pytest.approx(0.5)
        assert merged.stats["shards_completed"] == 2


class TestSegmentedParallel:
    def test_violating_segment_interprets_like_serial(self):
        # Regression: pooled segment results must carry the segment's
        # polygraph, or interpret_violation misclassifies the witness
        # as an axiom violation.
        from repro.extensions.segmented import (
            check_segmented,
            run_segmented_workload,
        )
        from repro.storage.database import MVCCDatabase
        from repro.storage.faults import DATABASE_PROFILES
        from repro.workloads.generator import (
            WorkloadParams,
            generate_workload,
        )

        faults = DATABASE_PROFILES["mariadb-galera-sim"]["faults"]
        params = WorkloadParams(sessions=5, txns_per_session=10,
                                ops_per_txn=4, keys=6, read_proportion=0.5)
        spec = generate_workload(params, seed=0)
        run = run_segmented_workload(MVCCDatabase(faults=faults, seed=0),
                                     spec, snapshot_every=6, seed=0)
        serial = check_segmented(run)
        assert not serial.satisfies_si  # seed 0 violates within segment 0
        parallel = check_segmented(run, workers=2, oversubscribe=True)
        assert not parallel.satisfies_si
        assert parallel.failing_segment == serial.failing_segment
        want = interpret_violation(serial.segment_results[-1])
        got = interpret_violation(parallel.segment_results[-1])
        assert got.classification == want.classification

    def test_workers_match_serial_verdict(self):
        from repro.extensions.segmented import (
            check_segmented,
            run_segmented_workload,
        )
        from repro.storage.database import MVCCDatabase
        from repro.workloads.generator import (
            WorkloadParams,
            generate_workload,
        )

        params = WorkloadParams(
            sessions=4, txns_per_session=10, ops_per_txn=4,
            keys=10, read_proportion=0.5,
        )
        for isolation in ("snapshot", "read_committed"):
            spec = generate_workload(params, seed=5)
            db = MVCCDatabase(isolation=isolation, seed=5)
            run = run_segmented_workload(db, spec, snapshot_every=8, seed=5)
            serial = check_segmented(run)
            parallel = check_segmented(run, workers=2, oversubscribe=True)
            assert parallel.satisfies_si == serial.satisfies_si
            if not serial.satisfies_si:
                assert parallel.failing_segment is not None
