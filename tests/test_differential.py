"""Differential (property-based) tests: every checker against the
brute-force oracles on random histories.

These are the strongest correctness guarantees in the suite: PolySI (all
ablation variants), CobraSI, and dbcop must agree with Theorem 6's
enumeration semantics on arbitrary small histories — valid and invalid
alike.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.cobra import CobraChecker
from repro.baselines.cobrasi import CobraSIChecker
from repro.baselines.dbcop import DbcopChecker
from repro.baselines.naive import OracleTooLarge, naive_check_ser, naive_check_si
from repro.core.axioms import check_axioms
from repro.core.checker import PolySIChecker
from repro.core.polygraph import build_polygraph
from repro.workloads.random_histories import random_history


@st.composite
def small_histories(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000_000))
    sessions = draw(st.integers(min_value=1, max_value=3))
    txns = draw(st.integers(min_value=1, max_value=3))
    keys = draw(st.integers(min_value=1, max_value=3))
    abort = draw(st.sampled_from([0.0, 0.15]))
    rng = random.Random(seed)
    return random_history(
        rng,
        sessions=sessions,
        txns_per_session=txns,
        max_ops=4,
        keys=keys,
        abort_prob=abort,
    )


class TestPolySIAgainstOracle:
    @given(small_histories())
    @settings(max_examples=250, deadline=None)
    def test_default_checker(self, history):
        assert (
            PolySIChecker().check(history).satisfies_si
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=120, deadline=None)
    def test_without_pruning(self, history):
        assert (
            PolySIChecker(prune=False).check(history).satisfies_si
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=120, deadline=None)
    def test_without_compaction(self, history):
        assert (
            PolySIChecker(prune=False, compact=False).check(history).satisfies_si
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=80, deadline=None)
    def test_numpy_closure(self, history):
        assert (
            PolySIChecker(closure="numpy").check(history).satisfies_si
            == naive_check_si(history)
        )


class TestBaselinesAgainstOracle:
    @given(small_histories())
    @settings(max_examples=150, deadline=None)
    def test_cobrasi(self, history):
        assert (
            CobraSIChecker().check(history).satisfies_si
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=60, deadline=None)
    def test_cobrasi_gpu_variant(self, history):
        assert (
            CobraSIChecker(gpu=True).check(history).satisfies_si
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=150, deadline=None)
    def test_dbcop_on_cyclic_anomalies(self, history):
        """dbcop is incomplete for non-cyclic anomalies (Section 7), so the
        comparison is restricted to histories passing the axioms."""
        if check_axioms(history):
            return
        _graph, construction = build_polygraph(history)
        if construction:
            return
        assert (
            DbcopChecker().check_si(history).satisfies
            == naive_check_si(history)
        )

    @given(small_histories())
    @settings(max_examples=120, deadline=None)
    def test_cobra_against_ser_oracle(self, history):
        try:
            want = naive_check_ser(history)
        except OracleTooLarge:
            return
        assert CobraChecker().check(history).serializable == want


class TestCrossCheckerRelations:
    @given(small_histories())
    @settings(max_examples=120, deadline=None)
    def test_serializable_implies_si(self, history):
        """SER is strictly stronger than SI (Figure 1)."""
        if CobraChecker().check(history).serializable:
            assert PolySIChecker().check(history).satisfies_si

    @given(small_histories())
    @settings(max_examples=100, deadline=None)
    def test_verdict_stable_across_variants(self, history):
        verdicts = {
            PolySIChecker().check(history).satisfies_si,
            PolySIChecker(prune=False).check(history).satisfies_si,
            CobraSIChecker().check(history).satisfies_si,
        }
        assert len(verdicts) == 1


class TestSerOracleAgreement:
    @given(small_histories())
    @settings(max_examples=100, deadline=None)
    def test_dbcop_ser_matches_oracle(self, history):
        if check_axioms(history):
            return
        _graph, construction = build_polygraph(history)
        if construction:
            return
        try:
            want = naive_check_ser(history)
        except OracleTooLarge:
            return
        assert DbcopChecker().check_ser(history).satisfies == want


class TestOracleInternals:
    def test_oracle_budget_guard(self):
        from repro.core.history import History, W

        # Four blind writers of one key: 4! = 24 version orders > budget.
        history = History.from_ops(
            [[[W("x", i)]] for i in range(4)]
        )
        with pytest.raises(OracleTooLarge):
            naive_check_si(history, max_orders=2)

    def test_ser_oracle_txn_guard(self):
        from repro.core.history import History, W

        history = History.from_ops(
            [[[W(f"k{i}", i)]] for i in range(5)]
        )
        with pytest.raises(OracleTooLarge):
            naive_check_ser(history, max_txns=3)
