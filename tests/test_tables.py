"""Tests for the multi-column table bridge (repro.storage.tables)."""

import pytest

from repro import check_snapshot_isolation
from repro.storage.client import run_workload
from repro.storage.database import MVCCDatabase
from repro.storage.faults import FaultConfig
from repro.storage.tables import (
    TableClient,
    compile_table_spec,
    compound_key,
    split_compound_key,
)


class TestCompoundKeys:
    def test_roundtrip(self):
        key = compound_key("users", 42, "name")
        assert split_compound_key(key) == ("users", "42", "name")

    def test_distinct_cells_distinct_keys(self):
        assert compound_key("t", 1, "a") != compound_key("t", 1, "b")
        assert compound_key("t", 1, "a") != compound_key("t", 2, "a")
        assert compound_key("t", 1, "a") != compound_key("u", 1, "a")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            split_compound_key("plain-key")


class TestTableClient:
    def test_insert_select_roundtrip(self):
        client = TableClient(MVCCDatabase())
        txn = client.begin(0)
        client.insert(txn, "users", 1, {"name": "ada", "age": 36})
        assert client.commit(txn)
        txn = client.begin(1)
        row = client.select(txn, "users", 1, ["name", "age"])
        assert row == {"name": "ada", "age": 36}

    def test_missing_cells_are_none(self):
        client = TableClient(MVCCDatabase())
        txn = client.begin(0)
        assert client.select(txn, "users", 9, ["name"]) == {"name": None}

    def test_update_changes_single_cell(self):
        client = TableClient(MVCCDatabase())
        txn = client.begin(0)
        client.insert(txn, "users", 1, {"name": "ada", "age": 36})
        client.commit(txn)
        txn = client.begin(0)
        client.update(txn, "users", 1, {"age": 37})
        client.commit(txn)
        txn = client.begin(1)
        assert client.select(txn, "users", 1, ["name", "age"]) == {
            "name": "ada", "age": 37,
        }

    def test_read_modify_write_conflict_detected(self):
        """Two concurrent balance updates: first-committer-wins fires."""
        client = TableClient(MVCCDatabase())
        setup = client.begin(0)
        client.insert(setup, "accounts", 1, {"balance": 100})
        client.commit(setup)
        t1 = client.begin(1)
        t2 = client.begin(2)
        client.read_modify_write(t1, "accounts", 1, "balance",
                                 lambda b: b + 50)
        client.read_modify_write(t2, "accounts", 1, "balance",
                                 lambda b: b + 50)
        assert client.commit(t1)
        assert not client.commit(t2)

    def test_same_payload_different_tokens(self):
        """Two cells holding equal payloads must not collide under the
        UniqueValue assumption."""
        client = TableClient(MVCCDatabase())
        txn = client.begin(0)
        client.insert(txn, "users", 1, {"name": "sam"})
        client.insert(txn, "users", 2, {"name": "sam"})
        client.commit(txn)
        txn = client.begin(1)
        assert client.select(txn, "users", 1, ["name"])["name"] == "sam"
        assert client.select(txn, "users", 2, ["name"])["name"] == "sam"


class TestCompiledTableWorkloads:
    def _spec(self):
        return [
            [  # session 0: create two accounts
                [("insert", "acct", "a", {"bal": 10}),
                 ("insert", "acct", "b", {"bal": 20})],
            ],
            [  # session 1: read both, transfer
                [("select", "acct", "a", ["bal"]),
                 ("select", "acct", "b", ["bal"]),
                 ("update", "acct", "a", {"bal": 5}),
                 ("update", "acct", "b", {"bal": 25})],
            ],
            [  # session 2: audit
                [("select", "acct", "a", ["bal"]),
                 ("select", "acct", "b", ["bal"])],
            ],
        ]

    def test_compiled_spec_unique_values(self):
        kv_spec = compile_table_spec(self._spec())
        written = [op[2] for s in kv_spec for t in s for op in t
                   if op[0] == "w"]
        assert len(written) == len(set(written))

    def test_si_store_passes_checker(self):
        kv_spec = compile_table_spec(self._spec())
        db = MVCCDatabase(seed=1)
        run = run_workload(db, kv_spec, seed=1)
        assert check_snapshot_isolation(run.history).satisfies_si

    def test_buggy_store_fails_checker(self):
        # Contended RMW on one row cell across many sessions.
        spec = [
            [[("insert", "acct", "x", {"bal": 0})]],
        ] + [
            [[("select", "acct", "x", ["bal"]),
              ("update", "acct", "x", {"bal": 100 + s})]]
            for s in range(4)
        ]
        kv_spec = compile_table_spec(spec)
        found = False
        for seed in range(10):
            db = MVCCDatabase(
                faults=FaultConfig(no_first_committer_wins=True), seed=seed
            )
            run = run_workload(db, kv_spec, seed=seed)
            if not check_snapshot_isolation(run.history).satisfies_si:
                found = True
                break
        assert found

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            compile_table_spec([[[("drop", "acct", "x", {})]]])
