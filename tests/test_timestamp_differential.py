"""Adversarial differential suite: the ``timestamp`` engine vs PolySI.

The timestamp engine's contract is *unconditional verdict parity*: the
fast path only ever certifies (it never declares a violation on its own
numbers), and everything it cannot certify is re-checked by the PolySI
pipeline — so no stamping, however adversarial, may change a verdict.
This suite attacks that contract from three directions:

- the full known-anomaly corpus and seeded random histories, serially
  stamped (a stamping that is deliberately *not* a valid witness for
  most of them, maximizing fallback coverage);
- collected SQLite histories, where the database-issued logical clock
  certifies everything on the fast path;
- clock-skew fuzzing: random perturbations of every stamp, at noise
  scales from microseconds to far beyond transaction length — unsafe
  stamps must route to the fallback, never flip a verdict.
"""

import random

import pytest

from repro.api import check
from repro.collect import Collector, SQLiteAdapter
from repro.core.checker import PolySIChecker
from repro.timestamp import (
    TimestampChecker,
    perturb_timestamps,
    stamp_serial,
)
from repro.workloads.corpus import ANOMALY_TEMPLATES, make_anomaly
from repro.workloads.generator import WorkloadParams, generate_workload
from repro.workloads.random_histories import random_history

from _helpers import serializable_history


def verdicts(history, stamped=None):
    """(timestamp verdict, polysi verdict) for one history."""
    ts = TimestampChecker().check(stamped if stamped is not None else history)
    ps = PolySIChecker().check(history)
    return ts, ps


@pytest.fixture(scope="module")
def collected():
    """One live SQLite collection with logical-clock timestamps."""
    adapter = SQLiteAdapter()
    spec = generate_workload(
        WorkloadParams(sessions=3, txns_per_session=10, ops_per_txn=4,
                       keys=12),
        seed=3,
    )
    try:
        return Collector(adapter).run(spec).history
    finally:
        adapter.close()


class TestAnomalyCorpus:
    """Every anomaly class, padded and serially stamped: identical
    verdicts, and on violations the classified anomaly agrees."""

    @pytest.mark.parametrize("name", sorted(ANOMALY_TEMPLATES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_verdict_and_classification_parity(self, name, seed):
        history = make_anomaly(name, seed=seed, padding_txns=6)
        stamped = stamp_serial(history)
        ts_report = check(stamped, engine="timestamp")
        ps_report = check(history)
        assert ts_report.ok == ps_report.ok, (name, seed)
        if not ps_report.ok:
            ts_cx = ts_report.counterexample
            ps_cx = ps_report.counterexample
            assert ts_cx is not None and ps_cx is not None
            assert ts_cx.classification == ps_cx.classification, (name, seed)


class TestRandomHistories:
    """Seeded unconstrained fuzz: valid and invalid histories alike."""

    @pytest.mark.parametrize("seed", range(60))
    def test_verdict_parity(self, seed):
        rng = random.Random(seed)
        history = random_history(
            rng, sessions=3, txns_per_session=3, max_ops=4, keys=3,
            abort_prob=0.15 if seed % 3 == 0 else 0.0,
        )
        ts, ps = verdicts(history, stamp_serial(history))
        assert ts.satisfies_si == ps.satisfies_si, seed


class TestCollectedHistories:
    """Live SQLite: logical clocks certify everything on the fast path."""

    def test_fast_path_certifies_clean_collection(self, collected):
        ts, ps = verdicts(collected, collected)
        assert ps.satisfies_si
        assert ts.satisfies_si
        assert ts.decided_by == "timestamps"
        assert ts.stats["residue_txns"] == 0
        assert ts.fallback_result is None

    def test_facade_reports_residue_stats(self, collected):
        report = check(collected, engine="timestamp")
        assert report.ok
        assert report.stats["residue_fraction"] == 0.0
        assert report.stats["residue_reasons"] == {}


class TestClockSkewFuzz:
    """Perturbed stamps may only grow the residue, never the verdict."""

    #: Noise magnitudes: sub-interval, interval-sized, and catastrophic.
    MAGNITUDES = [1e-6, 0.5, 3.0, 1e4]

    @pytest.mark.parametrize("magnitude", MAGNITUDES)
    def test_perturbed_collection_never_diverges(self, collected, magnitude):
        ps = PolySIChecker().check(collected)
        for seed in range(5):
            noisy = perturb_timestamps(collected, random.Random(seed),
                                       magnitude)
            ts = TimestampChecker().check(noisy)
            assert ts.satisfies_si == ps.satisfies_si, (magnitude, seed)

    @pytest.mark.parametrize("magnitude", MAGNITUDES)
    @pytest.mark.parametrize("name", ["lost-update", "long-fork",
                                      "cyclic-information-flow"])
    def test_perturbed_anomalies_never_diverge(self, name, magnitude):
        history = make_anomaly(name, seed=5, padding_txns=4)
        ps = PolySIChecker().check(history)
        assert not ps.satisfies_si
        for seed in range(5):
            noisy = perturb_timestamps(stamp_serial(history),
                                       random.Random(seed), magnitude)
            ts = TimestampChecker().check(noisy)
            assert ts.satisfies_si == ps.satisfies_si, (magnitude, seed)

    def test_large_skew_routes_to_fallback_not_certification(self, collected):
        """Catastrophic noise on a *valid* history must not be silently
        re-certified by the fast path: the intervals stop agreeing with
        the reads, so the residue absorbs the ambiguity."""
        noisy = perturb_timestamps(collected, random.Random(7), 1e4)
        ts = TimestampChecker().check(noisy)
        assert ts.satisfies_si
        assert ts.stats["residue_txns"] > 0
        assert ts.decided_by == "fallback"


class TestUnsafeInputsStaySound:
    """Edge shapes that must degrade to the fallback, not to a wrong
    answer or a crash."""

    def test_partially_stamped_history_falls_back(self):
        history = serializable_history()
        stamped = stamp_serial(history)
        # Strip one transaction's stamps: its cluster becomes residue.
        from repro.timestamp import map_timestamps
        victim = next(t for t in stamped.transactions if t.committed).tid
        partial = map_timestamps(
            stamped,
            lambda t: None if t.tid == victim
            else (t.start_ts, t.commit_ts) if t.timestamped else None,
        )
        ts = TimestampChecker().check(partial)
        assert ts.satisfies_si
        assert ts.stats["residue_reasons"].get("missing") == 1

    def test_equal_commit_stamps_fall_back(self):
        history = serializable_history()
        from repro.timestamp import map_timestamps
        flat = map_timestamps(stamp_serial(history),
                              lambda t: (0.0, 1.0) if t.committed else None)
        ts = TimestampChecker().check(flat)
        ps = PolySIChecker().check(history)
        assert ts.satisfies_si == ps.satisfies_si
        assert ts.stats["residue_txns"] > 0
