"""Tests for the unified checking façade (repro.api).

One ``Checker`` / ``repro.check`` call per scenario, one ``Report``
type out, registry-driven capability errors, and deprecation shims on
every pre-façade entry point.
"""

import json

import pytest

import repro
from repro.api import (
    Checker,
    CheckerError,
    CheckOptions,
    EngineSpec,
    Report,
    UnknownEngineError,
    UnsupportedComboError,
    UnsupportedOptionError,
    adapt_result,
    check,
    default_engine,
    get_engine,
    list_engines,
    register_engine,
    supported_combos,
)
from repro.core.checker import CheckResult
from repro.extensions.segmented import run_segmented_workload
from repro.listappend import A, L, ListHistoryBuilder
from repro.storage.database import MVCCDatabase
from repro.timestamp import stamp_serial
from repro.workloads.generator import WorkloadParams, generate_workload

from _helpers import (
    causality_history,
    long_fork_history,
    lost_update_history,
    serializable_history,
    write_skew_history,
)


def _segmented_run():
    spec = generate_workload(
        WorkloadParams(sessions=3, txns_per_session=6, ops_per_txn=4,
                       keys=8),
        seed=1,
    )
    return run_segmented_workload(MVCCDatabase(seed=1), spec,
                                  snapshot_every=6, seed=1)


def _list_history():
    b = ListHistoryBuilder()
    b.txn(0, [A("x", 1)])
    b.txn(1, [A("x", 2), L("x", [1, 2])])
    return b.build()


class TestEveryRegisteredCombo:
    """repro.check(subject, isolation=I, mode=M, engine=E) returns a
    Report for every registered combination (the acceptance criterion)."""

    @pytest.mark.parametrize("isolation,mode,engine", supported_combos())
    def test_combo_returns_report(self, isolation, mode, engine):
        spec = get_engine(engine)
        kind = spec.input_kind(isolation, mode)
        subject = {
            "history": serializable_history,
            "segmented_run": _segmented_run,
            "list_history": _list_history,
            "timestamped_history": lambda: stamp_serial(
                serializable_history()),
        }[kind]()
        options = {"workers": 2} if mode in ("parallel", "segmented") else {}
        report = check(subject, isolation, mode, engine, **options)
        assert isinstance(report, Report)
        assert report.ok, (isolation, mode, engine)
        assert (report.isolation, report.mode, report.engine) == (
            isolation, mode, engine
        )
        assert report.verdict == "satisfied"
        assert "satisfies" in report.describe()
        json.loads(report.to_json())

    def test_to_json_serializes_non_string_stat_keys_deterministically(self):
        """Regression: stats may carry int-keyed dicts (per-shard maps
        from the parallel engine); ``to_json`` must stringify and sort
        them instead of raising or depending on insertion order."""
        report = check(serializable_history())
        report.stats["per_shard"] = {3: {"txns": 5}, 1: {"txns": 7}}
        payload = json.loads(report.to_json())
        assert list(payload["stats"]["per_shard"]) == ["1", "3"]
        assert payload["stats"]["per_shard"]["1"] == {"txns": 7}
        # deterministic regardless of insertion order
        report.stats["per_shard"] = {1: {"txns": 7}, 3: {"txns": 5}}
        assert json.loads(report.to_json()) == payload


class TestVerdicts:
    def test_si_violation(self):
        report = check(long_fork_history())
        assert not report.ok
        assert report.verdict == "violated"
        assert report.cycle
        assert "violates" in report.describe()

    def test_isolation_hierarchy_on_write_skew(self):
        """Write skew: SI allows it, serializability does not."""
        history = write_skew_history()
        assert check(history).ok
        for engine in ("cobra", "dbcop", "naive"):
            assert not check(history, isolation="ser", engine=engine).ok

    def test_causal_and_ra_levels(self):
        assert not check(causality_history(), isolation="causal").ok
        assert check(serializable_history(), isolation="causal").ok
        assert check(serializable_history(), isolation="ra").ok

    def test_default_engine_per_isolation(self):
        assert default_engine("si") == "polysi"
        assert default_engine("ser") == "cobra"
        assert check(write_skew_history(), isolation="ser").engine == "cobra"

    def test_checker_is_reusable(self):
        checker = Checker()
        assert checker.check(serializable_history()).ok
        assert not checker.check(lost_update_history()).ok

    def test_native_result_is_attached(self):
        report = check(serializable_history())
        assert isinstance(report.native, CheckResult)


class TestReportEvidence:
    def test_interpret_returns_classified_counterexample(self):
        report = check(lost_update_history())
        example = report.interpret()
        assert example.classification == "lost update"
        assert report.counterexample is not None
        # Cached: repeated reads return the same interpretation object.
        assert report.counterexample is report.counterexample

    def test_interpret_on_satisfied_report_raises(self):
        from repro.interpret import InterpretationError

        with pytest.raises(InterpretationError):
            check(serializable_history()).interpret()

    def test_counterexample_none_for_oracle_engines(self):
        report = check(long_fork_history(), engine="dbcop")
        assert not report.ok
        assert report.counterexample is None

    def test_online_anomaly_evidence_interprets(self):
        """Online witnesses lose their polygraph, but anomaly-only
        evidence (axiom violations) still classifies."""
        from repro.core.history import ABORTED, HistoryBuilder, R, W

        b = HistoryBuilder()
        b.txn(0, [W("k", 1)], status=ABORTED)
        b.txn(1, [R("k", 1)])
        report = check(b.build(), mode="online")
        assert not report.ok
        assert report.counterexample is not None

    def test_online_cycle_evidence_does_not_interpret(self):
        report = check(causality_history(), mode="online")
        assert not report.ok
        if report.cycle and not report.anomalies:
            assert report.counterexample is None

    def test_segmented_report_carries_segment_stats(self):
        report = check(_segmented_run(), mode="segmented")
        assert report.stats["segments"] >= 1
        assert report.stats["failing_segment"] is None

    def test_json_payload_fields(self):
        payload = json.loads(check(long_fork_history()).to_json())
        assert payload["verdict"] == "violated"
        assert payload["isolation"] == "si"
        assert payload["engine"] == "polysi"
        assert payload["cycle"]


class TestRegistryErrors:
    def test_unsupported_combo_names_alternative(self):
        with pytest.raises(UnsupportedComboError) as exc:
            check(serializable_history(), isolation="si", engine="cobra")
        assert "cobrasi" in str(exc.value) or "polysi" in str(exc.value)

    def test_unsupported_mode_for_engine(self):
        with pytest.raises(UnsupportedComboError) as exc:
            Checker("si", "online", "dbcop")
        assert "batch" in str(exc.value)

    def test_unknown_engine(self):
        with pytest.raises(UnknownEngineError) as exc:
            Checker(engine="spanner")
        assert "polysi" in str(exc.value)

    def test_unknown_isolation_and_mode(self):
        with pytest.raises(CheckerError):
            Checker(isolation="read_committed")
        with pytest.raises(CheckerError):
            Checker(mode="streaming")

    def test_option_unknown_to_engine(self):
        with pytest.raises(UnsupportedOptionError) as exc:
            Checker(engine="dbcop", workers=4)
        assert "max_states" in str(exc.value)

    def test_option_scoped_to_other_mode(self):
        with pytest.raises(UnsupportedOptionError) as exc:
            Checker(solve_every=4)
        assert "online" in str(exc.value)

    def test_unknown_option(self):
        with pytest.raises(UnsupportedOptionError):
            Checker(frobnicate=True)

    def test_option_scoped_per_combo(self):
        """An option the engine reads in *some* combo is still rejected
        by combos that never forward it (no silent no-ops)."""
        with pytest.raises(UnsupportedOptionError) as exc:
            Checker(isolation="causal", prune=False)
        assert "causal" in str(exc.value)
        with pytest.raises(UnsupportedOptionError):
            Checker(engine="naive", max_txns=5)       # SER-only budget
        assert Checker("ser", engine="naive", max_txns=5).check(
            serializable_history()
        ).ok
        with pytest.raises(UnsupportedOptionError):
            Checker(mode="online", compact=False)     # batch-only switch

    def test_wrong_input_kind(self):
        with pytest.raises(CheckerError) as exc:
            check(serializable_history(), mode="segmented", workers=1)
        assert "SegmentedRun" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        spec = get_engine("polysi")
        with pytest.raises(CheckerError):
            register_engine(spec)

    def test_bad_registration_rejected(self):
        bad = EngineSpec(
            name="test-bad", summary="", combos=frozenset({("si", "warp")}),
            options=frozenset(), runner=lambda *a: None,
        )
        with pytest.raises(CheckerError):
            register_engine(bad)

    def test_registration_validates_input_kinds(self):
        with pytest.raises(CheckerError):
            register_engine(EngineSpec(
                name="test-bad-input", summary="",
                combos=frozenset({("si", "batch")}),
                options=frozenset(), runner=lambda *a: None,
                inputs={("si", "segmented"): "segmented_run"},  # not a combo
            ))
        with pytest.raises(CheckerError):
            register_engine(EngineSpec(
                name="test-bad-kind", summary="",
                combos=frozenset({("si", "batch")}),
                options=frozenset(), runner=lambda *a: None,
                inputs={("si", "batch"): "hologram"},
            ))


class TestCheckOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckOptions(closure="gpu")
        with pytest.raises(ValueError):
            CheckOptions(workers=0)
        with pytest.raises(ValueError):
            CheckOptions(solve_every=0)

    def test_changed_tracks_non_defaults(self):
        assert CheckOptions().changed() == {}
        assert CheckOptions(prune=False).changed() == {"prune": False}

    def test_prebuilt_options_object(self):
        options = CheckOptions(prune=False)
        report = Checker(options=options).check(long_fork_history())
        assert not report.ok

    def test_options_and_kwargs_conflict(self):
        with pytest.raises(CheckerError):
            Checker(options=CheckOptions(), prune=False)

    def test_workers_shorthand_does_not_mutate_caller_options(self):
        options = CheckOptions()
        Checker("si", "parallel", workers=2, options=options)
        assert options.workers is None

    def test_workers_shorthand_is_validated(self):
        with pytest.raises(ValueError):
            Checker("si", "parallel", workers=0)


class TestRegistryExtension:
    def test_registering_a_new_engine_makes_it_callable(self):
        from repro.api.registry import _REGISTRY

        spec = EngineSpec(
            name="test-always-ok",
            summary="test stub",
            combos=frozenset({("si", "batch")}),
            options=frozenset(),
            runner=lambda subject, isolation, mode, options: True,
        )
        register_engine(spec)
        try:
            report = check(long_fork_history(), engine="test-always-ok")
            assert report.ok and report.decided_by == "oracle"
        finally:
            del _REGISTRY["test-always-ok"]


class TestDeprecatedEntryPoints:
    """Every pre-façade convenience entry point still works and warns."""

    def test_check_snapshot_isolation(self):
        with pytest.warns(DeprecationWarning):
            result = repro.check_snapshot_isolation(long_fork_history())
        assert isinstance(result, CheckResult)
        assert not result.satisfies_si

    def test_check_snapshot_isolation_parallel(self):
        with pytest.warns(DeprecationWarning):
            result = repro.check_snapshot_isolation_parallel(
                long_fork_history(), workers=1
            )
        assert not result.satisfies_si

    def test_check_segmented(self):
        from repro.extensions import check_segmented

        with pytest.warns(DeprecationWarning):
            result = check_segmented(_segmented_run())
        assert result.satisfies_si

    def test_weak_isolation_checkers(self):
        from repro.extensions import (
            check_read_atomicity,
            check_transactional_causal_consistency,
        )

        with pytest.warns(DeprecationWarning):
            assert check_transactional_causal_consistency(
                serializable_history()
            ).satisfies
        with pytest.warns(DeprecationWarning):
            assert check_read_atomicity(serializable_history()).satisfies

    def test_check_list_history(self):
        from repro.listappend import check_list_history

        with pytest.warns(DeprecationWarning):
            assert check_list_history(_list_history()).satisfies_si

    def test_deprecated_wrappers_agree_with_facade(self):
        with pytest.warns(DeprecationWarning):
            old = repro.check_snapshot_isolation(lost_update_history())
        new = repro.check(lost_update_history())
        assert old.satisfies_si == new.ok


class TestAdaptResult:
    def test_adapt_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            adapt_result(object(), isolation="si", mode="batch",
                         engine="polysi")

    def test_engine_listing_is_stable(self):
        names = [spec.name for spec in list_engines()]
        assert names == ["polysi", "timestamp", "cobra", "cobrasi",
                         "dbcop", "naive"]
