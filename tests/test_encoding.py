"""Tests for the SAT encoding of the induced SI graph (repro.core.encoding)."""

from repro.core.encoding import encode_polygraph, extract_violation_cycle
from repro.core.history import HistoryBuilder, R, W
from repro.core.polygraph import RW, WW, build_polygraph
from repro.core.pruning import prune_constraints

from _helpers import build, long_fork_history, write_skew_history


class TestStaticPart:
    def test_static_cycle_detected_without_solving(self):
        # Known-edge cycle: T0 -WR-> T1 (x), T1 -WR-> T0 (y).
        h = build([R("y", 2), W("x", 1)], [R("x", 1), W("y", 2)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert enc.static_cycle
        assert enc.solver is None

    def test_acyclic_known_graph_builds_solver(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert not enc.static_cycle
        assert enc.solver is not None

    def test_no_constraints_no_variables(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert enc.solver.num_vars == 0
        assert enc.solver.solve()

    def test_static_induced_edges_counted(self):
        h = build([W("x", 1)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert enc.num_static_induced_edges >= 1


class TestVariablePart:
    def test_constraint_vars_created(self):
        h = build([W("x", 1)], [W("x", 2)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        # One choice var plus two WW pair vars.
        assert len(enc.choice_var) == 1
        assert len(enc.dep_var) == 2
        assert enc.solver.solve()

    def test_rw_vars_created_for_readers(self):
        h = build([W("x", 1)], [W("x", 2)], [R("x", 1)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert len(enc.rw_var) == 1  # reader 2 -> writer 1

    def test_write_skew_is_sat(self):
        graph, _ = build_polygraph(write_skew_history())
        prune_constraints(graph)
        enc = encode_polygraph(graph)
        assert not enc.static_cycle
        assert enc.solver.solve()

    def test_long_fork_static_cycle_after_pruning(self):
        graph, _ = build_polygraph(long_fork_history())
        assert prune_constraints(graph).ok
        enc = encode_polygraph(graph)
        # Pruning promoted enough RW edges that the known induced graph is
        # itself cyclic: no solving required.
        assert enc.static_cycle

    def test_long_fork_unsat_and_cycle_extracted_without_pruning(self):
        graph, _ = build_polygraph(long_fork_history())
        enc = encode_polygraph(graph)
        assert not enc.static_cycle
        assert not enc.solver.solve()
        cycle = extract_violation_cycle(enc)
        assert cycle is not None
        # Figure 3(e): the witness alternates WR and RW over x and y.
        labels = [e[2] for e in cycle]
        assert labels.count(RW) >= 1
        for (edge, nxt) in zip(cycle, cycle[1:] + cycle[:1]):
            assert edge[1] == nxt[0]

    def test_lost_update_unsat_via_solver(self):
        from _helpers import lost_update_history

        graph, _ = build_polygraph(lost_update_history())
        assert prune_constraints(graph).ok
        enc = encode_polygraph(graph)
        assert not enc.static_cycle
        assert not enc.solver.solve()
        cycle = extract_violation_cycle(enc)
        assert cycle is not None

    def test_resolved_edges_cover_known_and_branches(self):
        h = build([W("x", 1)], [W("x", 2)])
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        assert enc.solver.solve()
        edges = enc.resolved_edges(enc.solver)
        ww = [e for e in edges if e[2] == WW]
        assert len(ww) == 1  # exactly one branch chosen

    def test_stats_shape(self):
        graph, _ = build_polygraph(long_fork_history())
        enc = encode_polygraph(graph)
        stats = enc.stats()
        assert set(stats) == {
            "vars", "clauses", "induced_edges", "static_induced_edges",
            "aux_vars",
        }
        assert stats["vars"] > 0


class TestInducedSelfLoops:
    def test_dep_rw_self_composition_rejected(self):
        """A resolution where dep(u,k) and rw(k,u) both hold induces a
        self-loop on u, which the theory must reject."""
        # T1 reads x from T0; pair (T0, T2) on x: branch "T0 first" forces
        # RW(T1 -> T2).  Make T2 -> T1 a known dep via session order, so
        # that branch induces the cycle T2 -SO-> T1 -RW-> T2.
        b = HistoryBuilder()
        b.txn(0, [W("x", 1)])
        b.txn(1, [W("x", 2)])         # T2 (tid 1)
        b.txn(1, [R("x", 1)])         # T1 (tid 2), after T2 in session
        h = b.build()
        graph, _ = build_polygraph(h)
        enc = encode_polygraph(graph)
        # Still satisfiable: solver must pick WW(writer2 -> writer0)... or
        # the opposite; at least one branch avoids the loop.
        assert enc.solver.solve()
        edges = enc.resolved_edges(enc.solver)
        assert (0, 1, WW, "x") in edges or (1, 0, WW, "x") in edges
