"""Differential sweep: every registered SI-capable (engine, mode) combo
must agree with the serial PolySI pipeline on the known-anomaly corpus
(and on satisfying histories).

The combos under test are *derived from the registry*, so registering a
new SI backend automatically enrolls it here.  One documented exception:
dbcop is faithfully incomplete for non-cyclic anomalies (Section 7 of
the paper; see tests/test_baselines.py) — the aborted-read and
intermediate-read classes are asserted as its known blind spots instead
of skipped, so a fixed dbcop would show up as a failure to *tighten*.
"""

import pytest

from repro.api import check, get_engine, list_engines
from repro.core.checker import PolySIChecker
from repro.workloads.corpus import (
    ANOMALY_TEMPLATES,
    known_anomaly_corpus,
    make_anomaly,
)

from _helpers import serializable_history, write_skew_history


def si_history_combos():
    """Every registered (engine, mode) claiming SI support over plain
    histories."""
    combos = []
    for spec in list_engines():
        for isolation, mode in sorted(spec.combos):
            if isolation == "si" and spec.input_kind("si", mode) == "history":
                combos.append((spec.name, mode))
    return combos


#: Anomaly classes an engine documents as undetectable (faithful
#: incompleteness, not a bug).
KNOWN_BLIND_SPOTS = {
    "dbcop": {"aborted-read", "intermediate-read"},
}


def _options(engine, mode):
    return {"workers": 2} if mode == "parallel" else {}


def test_registry_enrolls_the_expected_si_combos():
    combos = si_history_combos()
    assert ("polysi", "batch") in combos
    assert ("polysi", "online") in combos
    assert ("polysi", "parallel") in combos
    assert ("cobrasi", "batch") in combos
    assert ("dbcop", "batch") in combos
    assert ("naive", "batch") in combos


@pytest.mark.parametrize("engine,mode", si_history_combos())
def test_anomaly_templates_flagged_by_every_si_combo(engine, mode):
    """Every unpadded anomaly template violates SI under every combo
    (modulo documented blind spots, which must stay blind)."""
    blind = KNOWN_BLIND_SPOTS.get(engine, set())
    reference = PolySIChecker()
    for name in sorted(ANOMALY_TEMPLATES):
        history = make_anomaly(name, seed=7)
        assert not reference.check(history).satisfies_si, name
        report = check(history, "si", mode, engine, **_options(engine, mode))
        if name in blind:
            assert report.ok, (
                f"{engine} detected {name!r}: its documented blind spot "
                "closed — update KNOWN_BLIND_SPOTS"
            )
        else:
            assert not report.ok, (engine, mode, name)


@pytest.mark.parametrize("engine,mode", si_history_combos())
def test_satisfying_histories_pass_every_si_combo(engine, mode):
    for history in (serializable_history(), write_skew_history()):
        report = check(history, "si", mode, engine,
                       **_options(engine, mode))
        assert report.ok, (engine, mode)


@pytest.mark.parametrize("engine,mode", si_history_combos())
def test_padded_corpus_slice_agrees_with_serial_polysi(engine, mode):
    """One padded corpus history per anomaly class, swept through every
    SI combo: verdicts must match the serial PolySI pipeline."""
    blind = KNOWN_BLIND_SPOTS.get(engine, set())
    reference = PolySIChecker()
    for name, history in known_anomaly_corpus(len(ANOMALY_TEMPLATES),
                                              seed=3):
        if name in blind:
            continue
        expected = reference.check(history).satisfies_si
        report = check(history, "si", mode, engine,
                       **_options(engine, mode))
        assert report.ok == expected, (engine, mode, name)
